"""Cross-design equivalence: the five schemes differ in *when* metadata
moves, never in *what* the memory contains.

With the same keys (seed) and the same write-back stream, a graceful
flush must leave every design with the byte-identical NVM image: same
ciphertexts (counters advance identically), same data HMACs, same
counter lines, same tree, same TCB roots.  This pins the schemes to one
functional specification and catches any divergence a refactor might
introduce in a single assertion.
"""

import random

import pytest

from repro.core.schemes import create_scheme
from repro.metadata.merkle import MerkleTree
from tests.conftest import ALL_SCHEMES, SMALL_CAPACITY, small_config


def run_stream(scheme_name, config, writes):
    scheme = create_scheme(scheme_name, config, SMALL_CAPACITY, seed="equiv")
    t = 0
    for addr, data in writes:
        scheme.writeback(t, addr, data)
        t += 400
    scheme.flush()
    return scheme


def make_stream(n, seed, pages=40, blocks=16):
    rng = random.Random(seed)
    return [
        (
            rng.randrange(pages) * 4096 + rng.randrange(blocks) * 64,
            bytes([rng.randrange(256)]) * 64,
        )
        for _ in range(n)
    ]


@pytest.fixture(scope="module")
def flushed_schemes():
    config = small_config()
    writes = make_stream(250, seed=13)
    return {name: run_stream(name, config, writes) for name in ALL_SCHEMES}


class TestImageEquivalence:
    def test_data_region_identical(self, flushed_schemes):
        reference = flushed_schemes["ccnvm"]
        ref_lines = {
            a: reference.nvm.peek(a)
            for a in reference.nvm.touched_lines()
            if reference.layout.region_of(a) == "data"
        }
        for name, scheme in flushed_schemes.items():
            for addr, value in ref_lines.items():
                assert scheme.nvm.peek(addr) == value, (name, hex(addr))

    def test_counter_region_identical(self, flushed_schemes):
        reference = flushed_schemes["ccnvm"]
        layout = reference.layout
        counters = [
            a
            for a in reference.nvm.touched_lines()
            if layout.region_of(a) == "counter"
        ]
        assert counters, "stream must have dirtied counters"
        for name, scheme in flushed_schemes.items():
            for addr in counters:
                assert scheme.nvm.peek(addr) == reference.nvm.peek(addr), (
                    name,
                    hex(addr),
                )

    def test_data_hmac_region_identical(self, flushed_schemes):
        reference = flushed_schemes["ccnvm"]
        layout = reference.layout
        for name, scheme in flushed_schemes.items():
            for addr in reference.nvm.touched_lines():
                if layout.region_of(addr) == "data_hmac":
                    assert scheme.nvm.peek(addr) == reference.nvm.peek(addr), name

    def test_roots_identical_and_consistent(self, flushed_schemes):
        reference = flushed_schemes["ccnvm"]
        for name, scheme in flushed_schemes.items():
            assert scheme.tcb.root_new == reference.tcb.root_new, name
            tree = MerkleTree(scheme.nvm, scheme.hmac, scheme.genesis)
            assert tree.verify_consistent(scheme.tcb.root_new), name

    def test_reads_agree_everywhere(self, flushed_schemes):
        writes = make_stream(250, seed=13)
        final = {}
        for addr, data in writes:
            final[addr] = data
        t = 10**7
        for name, scheme in flushed_schemes.items():
            for addr, data in final.items():
                got, _ = scheme.read(t, addr)
                assert got == data, (name, hex(addr))
                t += 400


class TestDeterminism:
    def test_identical_runs_produce_identical_images(self, config):
        writes = make_stream(150, seed=21)
        a = run_stream("ccnvm", config, writes)
        b = run_stream("ccnvm", config, writes)
        assert a.nvm.snapshot() == b.nvm.snapshot()
        assert a.tcb.root_new == b.tcb.root_new
        assert a.nvm.total_writes == b.nvm.total_writes

    def test_different_seed_changes_every_ciphertext(self, config):
        writes = make_stream(20, seed=3)
        a = create_scheme("ccnvm", config, SMALL_CAPACITY, seed="one")
        b = create_scheme("ccnvm", config, SMALL_CAPACITY, seed="two")
        for t, (addr, data) in enumerate(writes):
            a.writeback(t * 400, addr, data)
            b.writeback(t * 400, addr, data)
        for addr, _ in writes:
            assert a.nvm.peek(addr) != b.nvm.peek(addr)
