"""End-to-end functional tests: every design round-trips real data
through encryption, the cache hierarchy, NVM residency and recovery."""

import random

import pytest

from repro import SecureMemory
from repro.core.schemes import create_scheme
from tests.conftest import ALL_SCHEMES, CONSISTENT_SCHEMES, SMALL_CAPACITY, payload


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestRoundTrips:
    def test_single_block(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=1)
        s.writeback(0, 0x1000, payload(1))
        data, _ = s.read(100, 0x1000)
        assert data == payload(1)

    def test_many_blocks_random_order(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=2)
        rng = random.Random(42)
        written = {}
        t = 0
        for i in range(300):
            addr = rng.randrange(SMALL_CAPACITY // 64) * 64
            s.writeback(t, addr, payload(i))
            written[addr] = payload(i)
            t += 500
        for addr, expected in written.items():
            data, _ = s.read(t, addr)
            assert data == expected
            t += 500

    def test_repeated_overwrites(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=3)
        t = 0
        for i in range(40):
            s.writeback(t, 0x2000, payload(i))
            t += 500
        data, _ = s.read(t, 0x2000)
        assert data == payload(39)

    def test_flush_then_graceful_restart(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=4)
        t = 0
        for i in range(60):
            s.writeback(t, 0x1000 + (i % 10) * 4096, payload(i))
            t += 500
        s.flush()
        s.crash()  # after a clean flush a crash must be harmless
        report = s.recover()
        assert report.success
        assert report.clean
        for i in range(50, 60):
            data, _ = s.read(t, 0x1000 + (i % 10) * 4096)
            assert data == payload(i)
            t += 500

    def test_ciphertext_never_plaintext(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=5)
        secret = bytes([0xD5]) * 64
        s.writeback(0, 0x3000, secret)
        assert s.nvm.peek(0x3000) != secret


@pytest.mark.parametrize("scheme", CONSISTENT_SCHEMES)
class TestCrashDurability:
    def test_writebacks_survive_mid_epoch_crash(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=6)
        t = 0
        written = {}
        for i in range(120):
            addr = 0x4000 + (i % 25) * 4096
            s.writeback(t, addr, payload(i))
            written[addr] = payload(i)
            t += 500
        s.crash()  # no flush: counters may be stale in NVM
        report = s.recover()
        assert report.success, report
        assert report.clean
        for addr, expected in written.items():
            data, _ = s.read(t, addr)
            assert data == expected
            t += 500

    def test_double_crash_recover(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=7)
        t = 0
        for i in range(50):
            s.writeback(t, 0x5000 + (i % 7) * 4096, payload(i))
            t += 500
        s.crash()
        assert s.recover().success
        # Write more after recovery, crash again.
        for i in range(50, 80):
            s.writeback(t, 0x5000 + (i % 7) * 4096, payload(i))
            t += 500
        s.crash()
        assert s.recover().success
        data, _ = s.read(t, 0x5000 + (79 % 7) * 4096)
        assert data == payload(79)

    def test_recovery_reports_retries_for_stale_counters(self, scheme, config):
        if scheme == "sc":
            pytest.skip("SC counters are never stale")
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=8)
        s.flush()
        t = 0
        for i in range(5):
            s.writeback(t, 0x6000, payload(i))
            t += 500
        s.crash()
        report = s.recover()
        assert report.success
        assert report.total_retries >= 1
        assert report.recovered_blocks >= 1


class TestNoCcFailsAfterCrash:
    """The paper's motivation: without crash consistency, a crash loses
    the freshest counters beyond any recoverable bound."""

    def test_unrecoverable_after_deep_updates(self, config):
        s = create_scheme("no_cc", config, SMALL_CAPACITY, seed=9)
        s.flush()  # NVM consistent here
        t = 0
        # Update one block far beyond the N=16 retry courtesy bound,
        # keeping the counter line cached (no evictions).
        for i in range(40):
            s.writeback(t, 0x7000, payload(i))
            t += 500
        s.crash()
        report = s.recover()
        assert not report.success
        assert 0x7000 in report.unrecoverable_blocks

    def test_facade_equivalent(self, config):
        mem = SecureMemory("no_cc", config, SMALL_CAPACITY, seed=10)
        for i in range(40):
            mem.store(0x7000, payload(i))
            mem.persist(0x7000, 64)
        mem.crash()
        assert not mem.recover().success
