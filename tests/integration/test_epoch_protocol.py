"""The epoch-based consistency protocol (Section 4.2) under a microscope:
drain triggers, atomic WPQ batches across crash points, root-register
lifecycle, and the invariant the whole design rests on — the in-NVM
Merkle tree always matches at least one TCB root."""

from repro.core.schemes import create_scheme
from repro.metadata.merkle import MerkleTree
from tests.conftest import SMALL_CAPACITY, payload, small_config


def ccnvm(config=None, seed=0, **cfg_kwargs):
    config = config or small_config(**cfg_kwargs)
    return create_scheme("ccnvm", config, SMALL_CAPACITY, seed=seed), config


def nvm_tree(scheme):
    return MerkleTree(scheme.nvm, scheme.hmac, scheme.genesis)


class TestDrainTriggers:
    def test_trigger1_queue_full(self):
        # 8-entry queue; each page-0..n write-back reserves counter + 3
        # ancestors; distinct pages overflow the queue quickly.
        s, _ = ccnvm(dirty_queue_entries=8)
        t = 0
        for page in range(12):
            s.writeback(t, page * 4096 * 5, payload(page))
            t += 500
        assert s.queue.drains_by_trigger()["queue_full"] >= 1

    def test_trigger3_update_limit(self):
        s, _ = ccnvm(update_limit=4, dirty_queue_entries=32)
        t = 0
        for i in range(6):  # 6 updates of one counter line > N=4
            s.writeback(t, 0x1000 + (i % 2) * 64, payload(i))
            t += 500
        assert s.queue.drains_by_trigger()["update_limit"] >= 1

    def test_trigger2_meta_eviction(self):
        # A tiny meta cache forces dirty metadata evictions.
        s, _ = ccnvm(meta_kb=1, dirty_queue_entries=64)
        t = 0
        for page in range(60):
            s.writeback(t, page * 4096 * 3 % SMALL_CAPACITY, payload(page))
            t += 500
        assert s.queue.drains_by_trigger()["meta_eviction"] >= 1

    def test_flush_records_flush_trigger(self):
        s, _ = ccnvm()
        s.writeback(0, 0x1000, payload(1))
        s.flush()
        assert s.queue.drains_by_trigger()["flush"] == 1

    def test_epoch_length_statistics(self):
        s, _ = ccnvm(update_limit=4)
        t = 0
        for i in range(20):
            s.writeback(t, 0x1000, payload(i))
            t += 500
        dist = s.queue.stats.distribution("epoch_writebacks")
        assert dist.count >= 3
        assert 3 <= dist.mean <= 6  # N=4 bounds epochs of a single hot line


class TestRootRegisterLifecycle:
    def test_roots_equal_between_epochs(self):
        s, _ = ccnvm()
        s.writeback(0, 0x1000, payload(1))
        s.flush()
        assert s.tcb.root_old == s.tcb.root_new

    def test_ds_keeps_root_new_lazy_mid_epoch(self):
        # With a cached path, deferred spreading must not touch root_new.
        s, _ = ccnvm()
        s.writeback(0, 0x1000, payload(1))
        s.flush()
        before = s.tcb.root_new
        s.writeback(1000, 0x1000, payload(2))  # path fully cached now
        assert s.tcb.root_new == before
        s.flush()
        assert s.tcb.root_new != before

    def test_no_ds_updates_root_new_per_writeback(self, config):
        s = create_scheme("ccnvm_no_ds", config, SMALL_CAPACITY, seed=0)
        s.writeback(0, 0x1000, payload(1))
        s.flush()
        before = s.tcb.root_new
        s.writeback(1000, 0x1000, payload(2))
        assert s.tcb.root_new != before

    def test_nwb_counts_and_resets(self):
        s, _ = ccnvm()
        for i in range(5):
            s.writeback(i * 500, 0x1000 + i * 4096, payload(i))
        assert s.tcb.nwb == 5
        s.flush()
        assert s.tcb.nwb == 0


class TestTreeConsistencyInvariant:
    """The central claim: the stored tree always matches a TCB root."""

    def check_invariant(self, s):
        tree = nvm_tree(s)
        ok_old = tree.verify_consistent(s.tcb.root_old)
        ok_new = tree.verify_consistent(s.tcb.root_new)
        assert ok_old or ok_new, "NVM tree matches neither TCB root"

    def test_invariant_holds_throughout_a_run(self):
        s, _ = ccnvm(update_limit=4, dirty_queue_entries=16, seed=3)
        t = 0
        for i in range(60):
            s.writeback(t, (i * 7 % 40) * 4096 + (i % 3) * 64, payload(i))
            t += 500
            if i % 10 == 0:
                self.check_invariant(s)
        s.flush()
        self.check_invariant(s)

    def test_invariant_after_crash_at_every_tenth_step(self):
        for crash_at in (5, 15, 25, 35):
            s, _ = ccnvm(update_limit=4, dirty_queue_entries=16, seed=crash_at)
            t = 0
            for i in range(crash_at):
                s.writeback(t, (i * 3 % 20) * 4096, payload(i))
                t += 500
            s.crash()
            self.check_invariant(s)
            assert s.recover().success


class TestAtomicDrainCrashWindows:
    """Crash interleavings around the draining protocol itself."""

    def test_crash_before_any_drain_keeps_old_tree(self):
        s, _ = ccnvm()
        s.flush()
        root_before = s.tcb.root_old
        s.writeback(0, 0x1000, payload(1))  # epoch open, not committed
        s.crash()
        # Metadata never reached NVM: the stored tree is the OLD state.
        tree = nvm_tree(s)
        assert tree.verify_consistent(root_before)
        assert s.recover().success  # data recovered via HMAC retry

    def test_wpq_batch_dropped_when_uncommitted(self):
        s, _ = ccnvm()
        s.writeback(0, 0x1000, payload(1))
        # Simulate the drainer crashing mid-batch: start signal sent,
        # lines blocked in the WPQ, no end signal.
        s.wpq.begin_atomic()
        counter_addr = s.layout.counter_line_addr(0x1000)
        line = s.meta.probe(counter_addr)
        s.wpq.write_atomic(counter_addr, s.meta.encoded(line))
        s.crash()
        # The residual cacheline was dropped: NVM still has the genesis
        # counter value.
        assert not s.nvm.is_touched(counter_addr)
        assert s.recover().success

    def test_committed_batch_survives_crash(self):
        s, _ = ccnvm()
        s.writeback(0, 0x1000, payload(1))
        s.flush()  # full protocol incl. end signal
        counter_addr = s.layout.counter_line_addr(0x1000)
        assert s.nvm.is_touched(counter_addr)
        s.crash()
        report = s.recover()
        assert report.success
        assert report.total_retries == 0  # nothing was stale

    def test_crash_between_end_signal_and_root_old_update(self):
        """ADR finishes the flush; the tree matches ROOTnew, not ROOTold."""
        s, _ = ccnvm(update_limit=4)
        t = 0
        # Drive several committed epochs, then reproduce the window by
        # committing a drain and rolling root_old back (as if the crash
        # hit after the end signal, before step 6).
        for i in range(6):
            s.writeback(t, 0x1000, payload(i))
            t += 500
        old_register = s.tcb.root_old
        s.flush()
        s.tcb.root_old = old_register  # crash before root_old update
        s.crash()
        tree = nvm_tree(s)
        assert not tree.verify_consistent(s.tcb.root_old)
        assert tree.verify_consistent(s.tcb.root_new)
        assert s.recover().success


class TestWriteTrafficAccounting:
    def test_sc_writes_full_path_per_writeback(self, config):
        s = create_scheme("sc", config, SMALL_CAPACITY, seed=0)
        s.writeback(0, 0x1000, payload(1))
        by_region = s.nvm.writes_by_region()
        # data + hmac + counter + 3 internal levels (1 MB device).
        assert by_region["data"] == 1
        assert by_region["data_hmac"] == 1
        assert by_region["counter"] == 1
        assert by_region["merkle"] == 3

    def test_ccnvm_defers_metadata_until_drain(self):
        s, _ = ccnvm()
        s.writeback(0, 0x1000, payload(1))
        by_region = s.nvm.writes_by_region()
        assert by_region["data"] == 1
        assert by_region["data_hmac"] == 1
        assert by_region.get("counter", 0) == 0
        assert by_region.get("merkle", 0) == 0
        s.flush()
        by_region = s.nvm.writes_by_region()
        assert by_region["counter"] == 1
        assert by_region["merkle"] == 3

    def test_shared_metadata_amortized_within_epoch(self):
        s, _ = ccnvm()
        t = 0
        for i in range(10):  # ten write-backs, same page
            s.writeback(t, 0x1000 + i * 64, payload(i))
            t += 500
        s.flush()
        by_region = s.nvm.writes_by_region()
        assert by_region["data"] == 10
        assert by_region["counter"] == 1  # one counter line, one flush
        assert by_region["merkle"] == 3  # one path, flushed once

    def test_osiris_flushes_counters_every_nth_update(self):
        cfg = small_config(update_limit=4)
        s = create_scheme("osiris_plus", cfg, SMALL_CAPACITY, seed=0)
        t = 0
        for i in range(12):  # 12 updates of one line, N=4 -> 3 flushes
            s.writeback(t, 0x1000 + (i % 2) * 64, payload(i))
            t += 500
        assert s.nvm.writes_by_region()["counter"] == 3
        assert s.nvm.writes_by_region().get("merkle", 0) == 0
