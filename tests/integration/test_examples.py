"""Smoke tests: every example script runs to completion.

Examples are user-facing documentation; a refactor that silently breaks
one is worse than a failing unit test.  Each is executed as a subprocess
exactly as a user would run it.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

pytestmark = pytest.mark.slow


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "recovery: success=True" in result.stdout
        assert "no plaintext" in result.stdout

    def test_attack_lab(self):
        result = run_example("attack_lab.py")
        assert result.returncode == 0, result.stderr
        assert "IntegrityError" in result.stdout
        assert "data_tampering at 0x1000" in result.stdout
        assert "potential replay detected: True" in result.stdout
        assert "all attacks detected" in result.stdout

    def test_secure_kv_store(self):
        result = run_example("secure_kv_store.py")
        assert result.returncode == 0, result.stderr
        assert "(not committed)" in result.stdout
        assert "balance=41" in result.stdout

    def test_crash_injection_campaign(self):
        result = run_example("crash_injection_campaign.py")
        assert result.returncode == 0, result.stderr
        assert "PASS" in result.stdout
        assert "every outcome matched its design's contract" in result.stdout
        # The smoke sweep must exercise the replay-vs-crash window (SC
        # false alarm) and cc-NVM's full recovery, plus the media phase.
        assert "FALSE_ALARM" in result.stdout
        assert "detected_by_hmac" in result.stdout

    def test_evaluate_designs_small(self):
        # --no-cache keeps the checkout free of a .repro-cache directory
        result = run_example("evaluate_designs.py", "--length", "500",
                             "--jobs", "2", "--no-cache")
        assert result.returncode == 0, result.stderr
        assert "Figure 5(a)" in result.stdout
        assert "headline numbers" in result.stdout
