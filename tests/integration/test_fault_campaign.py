"""Integration tests for the differential recovery oracle.

One smoke campaign run (shared across the class via a module fixture)
must satisfy the subsystem's acceptance bar: enough distinct crash sites
fire, cc-NVM comes back clean from every reachable micro-step including
crashes injected into recovery itself, the known SC replay-vs-crash
window is exhibited, and the media phase behaves per contract.
"""

import json

import pytest

from repro.analysis.export import campaign_to_csv, campaign_to_json
from repro.faults import CampaignConfig, run_campaign
from repro.faults.plan import RECOVERY_SITES


@pytest.fixture(scope="module")
def smoke():
    return run_campaign(CampaignConfig.smoke())


class TestSmokeCampaign:
    def test_every_outcome_matches_its_contract(self, smoke):
        assert smoke.passed, "\n".join(smoke.failures())

    def test_sweeps_enough_distinct_sites(self, smoke):
        fired = smoke.sites_fired()
        assert len(fired) >= 8
        # At least one crash landed inside recovery itself.
        assert fired & RECOVERY_SITES

    def test_ccnvm_recovers_everywhere(self, smoke):
        ccnvm = [r for r in smoke.injections if r.scheme == "ccnvm"]
        assert len(ccnvm) == 15  # every registered site is reachable
        assert all(r.fired and r.outcome == "RECOVERED" for r in ccnvm)

    def test_retries_stay_bounded(self, smoke):
        limit = 16  # the default update-times limit N
        for r in smoke.injections:
            if r.fired:
                assert r.total_retries <= limit * 8  # 8 hot blocks

    def test_sc_false_alarms_only_in_the_replay_window(self, smoke):
        sc = {r.site: r for r in smoke.injections if r.scheme == "sc"}
        assert sc["writeback.after_data"].outcome == "FALSE_ALARM"
        others = [r for site, r in sc.items() if site != "writeback.after_data"]
        assert all(r.outcome in ("RECOVERED", "NOT_REACHED") for r in others)

    def test_media_phase_contracts(self, smoke):
        outcomes = {(m.scheme, m.kind): m.outcome for m in smoke.media}
        for scheme in smoke.schemes:
            assert outcomes[(scheme, "transient")] == "absorbed"
            assert outcomes[(scheme, "permanent")] == "degraded_located"
            assert outcomes[(scheme, "silent")] == "detected_by_hmac"

    def test_double_crash_runs_are_marked(self, smoke):
        doubles = [
            r for r in smoke.injections
            if r.scheme == "ccnvm" and r.site in RECOVERY_SITES
        ]
        assert len(doubles) == len(RECOVERY_SITES)
        for r in doubles:
            assert any("double crash" in n for n in r.notes)
            assert any("resumed" in n for n in r.notes)


class TestExport:
    def test_json_round_trip(self, smoke):
        doc = json.loads(campaign_to_json(smoke))
        assert doc["passed"] is True
        assert len(doc["injections"]) == len(smoke.injections)
        assert {m["kind"] for m in doc["media"]} == {
            "transient", "permanent", "silent"
        }

    def test_csv_has_one_row_per_experiment(self, smoke):
        lines = campaign_to_csv(smoke).strip().splitlines()
        assert lines[0].startswith("phase,scheme,site")
        assert len(lines) == 1 + len(smoke.injections) + len(smoke.media)


class TestConfigKnobs:
    def test_site_restriction(self):
        cfg = CampaignConfig(
            schemes=("ccnvm",),
            sites=("writeback.after_data", "recovery.mid_rebuild"),
            steps=32,
            media=False,
        )
        result = run_campaign(cfg)
        assert result.passed
        assert {r.site for r in result.injections} == set(cfg.sites)

    def test_summary_mentions_pass(self):
        cfg = CampaignConfig(
            schemes=("sc",), sites=("writeback.before_data",),
            steps=32, media=False,
        )
        assert "PASS" in run_campaign(cfg).summary()
