"""Conventional (DRAM-style) Merkle maintenance under cache pressure.

w/o CC propagates HMACs lazily on dirty evictions; Osiris Plus keeps
cached ancestors current per write-back; SC carries mid-chain victims in
its atomic batches.  A tiny meta cache forces all of those paths, and
every verified re-fetch must still pass — the invariant being that the
cache + TCB view is *always* internally consistent no matter when lines
leave the cache."""

import random

import pytest

from repro.core.schemes import create_scheme
from repro.metadata.metacache import IntegrityError
from tests.conftest import SMALL_CAPACITY, payload, small_config


def stressed(scheme_name, meta_kb=1, seed=0, writebacks=150, pages=48):
    """A machine with a 1 KB meta cache driven over many pages."""
    config = small_config(meta_kb=meta_kb)
    scheme = create_scheme(scheme_name, config, SMALL_CAPACITY, seed=seed)
    rng = random.Random(seed)
    written = {}
    t = 0
    for i in range(writebacks):
        addr = rng.randrange(pages) * 4096 + rng.randrange(4) * 64
        scheme.writeback(t, addr, payload(i))
        written[addr] = payload(i)
        t += 500
    return scheme, written, t


@pytest.mark.parametrize("name", ["no_cc", "osiris_plus", "sc", "ccnvm", "ccnvm_no_ds"])
class TestUnderPressure:
    def test_evictions_happened(self, name):
        scheme, _, _ = stressed(name)
        assert scheme.meta.cache.stats.counter("evictions").value > 0

    def test_every_refetch_verifies(self, name):
        """Reads across the whole footprint re-walk paths containing a
        mix of cached, evicted-dirty and evicted-clean nodes — no
        IntegrityError may fire on legitimate data."""
        scheme, written, t = stressed(name)
        for addr, expected in written.items():
            data, _ = scheme.read(t, addr)
            assert data == expected
            t += 500

    def test_flush_leaves_consistent_image(self, name):
        from repro.metadata.merkle import MerkleTree

        scheme, _, _ = stressed(name)
        scheme.flush()
        tree = MerkleTree(scheme.nvm, scheme.hmac, scheme.genesis)
        assert tree.verify_consistent(scheme.tcb.root_new)

    def test_tampering_still_detected_under_pressure(self, name):
        scheme, written, t = stressed(name, seed=3)
        scheme.flush()
        victim = sorted(written)[0]
        raw = scheme.nvm.peek(victim)
        scheme.nvm.poke(victim, bytes([raw[0] ^ 1]) + raw[1:])
        scheme.meta.crash()
        scheme.hierarchy_dropped = True
        with pytest.raises(IntegrityError):
            scheme.read(t, victim)


class TestLazyPropagationSpecifics:
    def test_no_cc_dirty_evictions_write_to_nvm(self):
        scheme, _, _ = stressed("no_cc")
        by_region = scheme.nvm.writes_by_region()
        # Without any flush, metadata only reaches NVM via evictions.
        assert by_region.get("counter", 0) > 0

    def test_no_cc_root_register_advances_on_eviction_chains(self):
        scheme, _, _ = stressed("no_cc", writebacks=300)
        assert scheme.tcb.root_new != scheme.genesis.root_register()

    def test_osiris_keeps_parents_current_so_evictions_are_cheap(self):
        """Osiris updates the whole chain per write-back; an eviction
        must not trigger extra HMAC computations beyond the chain."""
        scheme, _, _ = stressed("osiris_plus", writebacks=100)
        wbs = scheme.engine.stats.counter("data_writebacks").value
        # Chain = 4 HMACs per write-back on the 1 MB layout; eviction
        # handling adds none (plus verification walks on fetches).
        chains = scheme.hmac.counter_hmac_count
        verifies = scheme.meta.stats.counter("integrity_failures").value
        assert chains >= 4 * wbs
        assert verifies == 0

    def test_sc_orphans_joined_atomic_batches(self):
        """Mid-chain evictions with a 1 KB meta cache must flow through
        the overlay into the same write-back's atomic batch."""
        scheme, _, _ = stressed("sc")
        assert scheme.meta.overlay == {}  # nothing left behind
        assert scheme.wpq.stats.counter("batches_committed").value > 0

    def test_ccnvm_overlay_empty_between_writebacks(self):
        scheme, _, _ = stressed("ccnvm")
        assert scheme.meta.overlay == {}
