"""Device geometries beyond the defaults: non-power-of-four page counts
(partial tree nodes), the minimum sensible device, and the paper's full
16 GB map — all through the complete write/crash/recover path."""

import random

import pytest

from repro.core.schemes import create_scheme
from repro.metadata.layout import MemoryLayout
from repro.metadata.merkle import MerkleTree
from tests.conftest import payload


def exercise(scheme, pages, writebacks=120, seed=0):
    rng = random.Random(seed)
    written = {}
    t = 0
    for i in range(writebacks):
        addr = rng.randrange(pages) * 4096 + rng.randrange(4) * 64
        scheme.writeback(t, addr, payload(i))
        written[addr] = payload(i)
        t += 400
    return written, t


class TestPartialTrees:
    """2048 pages: level counts 2048/512/128/32/8/2/1 — the top internal
    level has only two nodes, so the root register uses two of its four
    slots and several nodes sit at level boundaries."""

    CAPACITY = 8 << 20

    def test_geometry(self):
        layout = MemoryLayout(self.CAPACITY)
        assert layout.level_counts == (2048, 512, 128, 32, 8, 2, 1)
        assert layout.children_of(layout.root) == [
            type(layout.root)(layout.root_level - 1, 0),
            type(layout.root)(layout.root_level - 1, 1),
        ]

    def test_full_lifecycle(self, config):
        scheme = create_scheme("ccnvm", config, self.CAPACITY, seed=1)
        written, t = exercise(scheme, pages=2048)
        scheme.crash()
        assert scheme.recover().success
        for addr, data in written.items():
            assert scheme.read(t, addr)[0] == data
            t += 400

    def test_tree_invariant_holds(self, config):
        scheme = create_scheme("ccnvm", config, self.CAPACITY, seed=2)
        exercise(scheme, pages=2048, writebacks=60)
        scheme.flush()
        tree = MerkleTree(scheme.nvm, scheme.hmac, scheme.genesis)
        assert tree.verify_consistent(scheme.tcb.root_new)

    def test_attack_on_partial_level_detected(self, config):
        scheme = create_scheme("ccnvm", config, self.CAPACITY, seed=3)
        exercise(scheme, pages=2048, writebacks=40)
        scheme.flush()
        # Tamper with a node on the two-wide top internal level.
        from repro.metadata.layout import MerkleNodeId

        node = MerkleNodeId(scheme.layout.root_level - 1, 1)
        addr = scheme.layout.merkle_node_addr(node)
        raw = scheme.nvm.peek(addr)
        scheme.nvm.poke(addr, bytes([raw[0] ^ 1]) + raw[1:])
        scheme.crash()
        report = scheme.recover()
        assert any(f.kind == "tree_tampering" for f in report.findings)


class TestSmallestDevice:
    """16 pages (64 KB): a 3-level tree whose internal region is a single
    level — the degenerate end of the geometry."""

    CAPACITY = 1 << 16

    def test_geometry(self):
        layout = MemoryLayout(self.CAPACITY)
        assert layout.level_counts == (16, 4, 1)
        assert len(layout.metadata_addresses_for_writeback(0)) == 2

    @pytest.mark.parametrize("name", ["sc", "osiris_plus", "ccnvm"])
    def test_lifecycle(self, name, config):
        scheme = create_scheme(name, config, self.CAPACITY, seed=4)
        written, t = exercise(scheme, pages=16, writebacks=80)
        scheme.crash()
        assert scheme.recover().success
        for addr, data in written.items():
            assert scheme.read(t, addr)[0] == data
            t += 400


class TestPaperDevice:
    """The full 16 GB map, sparse: the 12-level tree end to end."""

    CAPACITY = 16 << 30

    def test_lifecycle_on_full_map(self, config):
        scheme = create_scheme("ccnvm", config, self.CAPACITY, seed=5)
        rng = random.Random(9)
        written = {}
        t = 0
        for i in range(60):
            # Spread across the whole 16 GB address space.
            addr = rng.randrange(self.CAPACITY // 4096) * 4096
            scheme.writeback(t, addr, payload(i))
            written[addr] = payload(i)
            t += 400
        scheme.crash()
        report = scheme.recover()
        assert report.success
        for addr, data in written.items():
            assert scheme.read(t, addr)[0] == data
            t += 400

    def test_spread_chain_length_matches_paper(self, config):
        """One cold write-back on the 16 GB device recomputes 11 HMACs
        (10 internal path nodes + the root slot) under w/o-DS."""
        scheme = create_scheme("ccnvm_no_ds", config, self.CAPACITY, seed=6)
        scheme.writeback(0, 0x12345000, payload(1))
        before = scheme.hmac.counter_hmac_count
        scheme.writeback(100_000, 0x12345000, payload(2))
        # Warm path: exactly the serial chain, no verification walks.
        assert scheme.hmac.counter_hmac_count - before == 11
