"""Integration tests for the run-orchestration subsystem.

The determinism contract is the load-bearing one: a spec executed
serially in-process and a spec executed by a spawn worker must produce
byte-identical serialized results, or the cache would make figures
depend on *how* they were computed.
"""

import pytest

from repro.faults.campaign import CampaignConfig, run_campaign
from repro.runs import (
    ResultCache,
    RunJournal,
    canonical_json,
    run_specs,
    simulation_spec,
)

FP = "f" * 16

SPECS = [
    simulation_spec(scheme, "hmmer", 300, 2)
    for scheme in ("no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm")
]


class TestDeterminism:
    @pytest.mark.slow
    def test_serial_and_pooled_results_are_byte_identical(self):
        serial = run_specs(SPECS, jobs=1)
        pooled = run_specs(SPECS, jobs=2)
        assert pooled.executed == len(SPECS)
        for spec in SPECS:
            assert canonical_json(serial.payload(spec)) == canonical_json(
                pooled.payload(spec)
            ), f"pooled result diverged for {spec.describe()}"

    def test_distinct_seeds_give_distinct_hashes_and_results(self):
        a = simulation_spec("ccnvm", "milc", 300, 1)
        b = simulation_spec("ccnvm", "milc", 300, 2)
        assert a.spec_hash() != b.spec_hash()
        report = run_specs([a, b])
        assert canonical_json(report.payload(a)) != canonical_json(report.payload(b))


class TestCacheIntegration:
    def test_second_pass_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint=FP)
        cold = run_specs(SPECS, cache=cache)
        assert (cold.executed, cold.cache_hits) == (len(SPECS), 0)
        warm = run_specs(SPECS, cache=cache)
        assert (warm.executed, warm.cache_hits) == (0, len(SPECS))
        for spec in SPECS:
            assert canonical_json(cold.payload(spec)) == canonical_json(
                warm.payload(spec)
            )

    def test_duplicate_submissions_cost_one_execution(self, tmp_path):
        cache = ResultCache(tmp_path, fingerprint=FP)
        report = run_specs([SPECS[0], SPECS[0], SPECS[0]], cache=cache)
        assert report.executed == 1
        assert len(report.outcomes) == 1


class TestJournalResume:
    def test_interrupted_sweep_resumes_without_cache(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        # "interrupt": only the first two specs completed before the crash
        with RunJournal(path, FP) as journal:
            first = run_specs(SPECS[:2], journal=journal)
        assert first.executed == 2
        with RunJournal(path, FP) as journal:
            resumed = run_specs(SPECS, journal=journal)
        assert resumed.journal_hits == 2
        assert resumed.executed == len(SPECS) - 2

    def test_journal_backfills_the_cache(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path, FP) as journal:
            run_specs(SPECS[:1], journal=journal)
        cache = ResultCache(tmp_path, fingerprint=FP)
        with RunJournal(path, FP) as journal:
            report = run_specs(SPECS[:1], cache=cache, journal=journal)
        assert report.journal_hits == 1
        assert cache.get(SPECS[0]) is not None


class TestFailureIsolation:
    def test_one_bad_spec_fails_one_spec(self):
        bad = simulation_spec("ccnvm", "no_such_benchmark", 300, 1)
        report = run_specs([SPECS[0], bad, SPECS[1]], jobs=2, chunk=1)
        assert report.failed == 1
        outcome = report.outcomes[bad.spec_hash()]
        assert outcome.status == "failed"
        assert "no_such_benchmark" in outcome.error
        assert report.outcomes[SPECS[0].spec_hash()].ok
        assert report.outcomes[SPECS[1].spec_hash()].ok
        with pytest.raises(RuntimeError, match="1 of 3 runs failed"):
            report.raise_on_failure()

    def test_failures_are_not_cached_or_resumed(self, tmp_path):
        bad = simulation_spec("ccnvm", "no_such_benchmark", 300, 1)
        cache = ResultCache(tmp_path, fingerprint=FP)
        with RunJournal(tmp_path / "j.jsonl", FP) as journal:
            run_specs([bad], cache=cache, journal=journal)
        assert cache.get(bad) is None
        with RunJournal(tmp_path / "j.jsonl", FP) as journal:
            report = run_specs([bad], cache=cache, journal=journal)
        assert report.executed == 1  # re-attempted, not replayed


class TestCampaignOrchestration:
    @pytest.mark.slow
    def test_parallel_campaign_matches_serial(self, tmp_path):
        cfg = CampaignConfig(
            schemes=("ccnvm",),
            sites=("wpq.before_end", "writeback.after_data"),
            steps=48,
        )
        serial = run_campaign(cfg)
        pooled = run_campaign(cfg, jobs=2)
        assert serial.to_dict() == pooled.to_dict()
        assert pooled.passed

    @pytest.mark.slow
    def test_campaign_cache_replays(self, tmp_path, monkeypatch):
        monkeypatch.setenv("CCNVM_CACHE_DIR", str(tmp_path / "cache"))
        cfg = CampaignConfig(
            schemes=("ccnvm",), sites=("wpq.before_end",), steps=48, media=False
        )
        cold = run_campaign(cfg, cache=True)
        warm = run_campaign(cfg, cache=True)
        assert cold.to_dict() == warm.to_dict()
        stats = ResultCache(tmp_path / "cache").cumulative
        assert stats["hits"] >= 2  # discover + injection replayed
