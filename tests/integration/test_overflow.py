"""Split-counter minor overflow: page re-encryption, forced commits, and
crash recovery across a major-counter bump."""

import pytest

from repro.common.constants import MINOR_COUNTER_MAX
from repro.core.schemes import create_scheme
from repro.metadata.counters import CounterLine
from tests.conftest import CONSISTENT_SCHEMES, SMALL_CAPACITY, payload


PAGE = 0x4000  # an arbitrary page base in the 1 MB device


def drive_to_overflow(s, block_addr, preload=True):
    """Saturate one block's minor counter, then trigger the overflow."""
    t = 0
    if preload:
        # Give a neighbour block some data so re-encryption moves real bytes.
        s.writeback(t, PAGE + 64, payload(200))
        t += 500
    counter_addr = s.layout.counter_line_addr(block_addr)
    s.meta.load_counter(block_addr)
    line = s.meta.probe(counter_addr)
    block = s.layout.block_slot(block_addr)
    line.data.minors[block] = MINOR_COUNTER_MAX  # fast-forward 127 updates
    s.writeback(t, block_addr, payload(99))  # the 128th increment
    return t + 500


@pytest.mark.parametrize("scheme", CONSISTENT_SCHEMES)
class TestOverflowFunctional:
    def test_page_rekeyed_and_readable(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=1)
        t = drive_to_overflow(s, PAGE)
        assert s.engine.stats.counter("page_reencryptions").value == 1
        # Both the trigger block and the re-encrypted neighbour read back.
        assert s.read(t, PAGE)[0] == payload(99)
        assert s.read(t + 500, PAGE + 64)[0] == payload(200)

    def test_major_advanced_minors_reset(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=1)
        drive_to_overflow(s, PAGE)
        line = s.meta.load_counter(PAGE).value
        assert line.major == 1
        block = s.layout.block_slot(PAGE)
        assert line.minors[block] == 1  # trigger block got a fresh minor
        assert line.minors[2] == 0

    def test_overflow_survives_crash(self, scheme, config):
        s = create_scheme(scheme, config, SMALL_CAPACITY, seed=1)
        t = drive_to_overflow(s, PAGE)
        s.crash()
        report = s.recover()
        assert report.success, report
        assert s.read(t, PAGE)[0] == payload(99)
        assert s.read(t + 500, PAGE + 64)[0] == payload(200)


class TestOverflowCommitsImmediately:
    def test_ccnvm_drains_on_overflow(self, config):
        s = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=2)
        drive_to_overflow(s, PAGE)
        assert s.queue.drains_by_trigger()["overflow"] == 1
        # The rolled counter is durable: stored major is already 1.
        stored = CounterLine.decode(s.nvm.peek(s.layout.counter_line_addr(PAGE)))
        assert stored.major == 1

    def test_osiris_flushes_rolled_counter(self, config):
        s = create_scheme("osiris_plus", config, SMALL_CAPACITY, seed=2)
        drive_to_overflow(s, PAGE)
        stored = CounterLine.decode(s.nvm.peek(s.layout.counter_line_addr(PAGE)))
        assert stored.major == 1


class TestRecoveryAcrossMajorBump:
    def test_recovery_normalizes_interrupted_rekey(self, config):
        """Crash with the counter line still at the old major: recovery
        must find the re-encrypted blocks past the bump and roll the page
        forward coherently."""
        s = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=3)
        t = drive_to_overflow(s, PAGE)
        # Manufacture the crash window: replay the counter region line to
        # its pre-overflow state (major 0), as if the drain never landed,
        # while data and HMACs (normal WPQ writes) did.
        old = CounterLine()
        old.minors[s.layout.block_slot(PAGE + 64)] = 1  # neighbour's one write
        old.minors[s.layout.block_slot(PAGE)] = MINOR_COUNTER_MAX
        s.nvm.poke(s.layout.counter_line_addr(PAGE), old.encode())
        s.crash()
        report = s.recover()
        assert report.majors_rolled >= 1
        stored = CounterLine.decode(s.nvm.peek(s.layout.counter_line_addr(PAGE)))
        assert stored.major == 1
        # Every block decrypts and authenticates after normalization.
        assert s.read(t, PAGE)[0] == payload(99)
        assert s.read(t + 500, PAGE + 64)[0] == payload(200)

    def test_nwb_check_skipped_when_major_rolled(self, config):
        s = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=3)
        drive_to_overflow(s, PAGE)
        old = CounterLine()
        old.minors[s.layout.block_slot(PAGE + 64)] = 1
        old.minors[s.layout.block_slot(PAGE)] = MINOR_COUNTER_MAX
        s.nvm.poke(s.layout.counter_line_addr(PAGE), old.encode())
        s.crash()
        report = s.recover()
        assert any("Nwb" in note for note in report.notes)
        assert not report.potential_replay_detected
