"""Integration tests for the simulation service (daemon-in-a-thread).

Each test runs the real :class:`SimulationService` + :class:`HttpServer`
on an ephemeral TCP port inside a background event loop and talks to it
with the real :class:`ServeClient` — the same stack ``repro serve`` and
``repro client`` use, minus the process boundary.  Workers start
*suspended* where a test needs deterministic queue states (coalescing,
admission control) and are released once the scenario is set up.
"""

import asyncio
import importlib
import json
import shutil
import threading

import pytest

from repro.analysis.experiments import FIGURE5_DESIGNS
from repro.runs.cache import ResultCache, code_fingerprint
from repro.runs.journal import RunJournal
from repro.runs.orchestrate import run_specs, sweep_journal_path
from repro.runs.spec import simulation_spec
from repro.serve.client import ServeClient, ServeError
from repro.serve.http import HttpServer
from repro.serve.protocol import is_terminal_event, stable_result_body, wire_encode
from repro.serve.service import SimulationService

# The package re-exports the orchestrate *function* under this name, so
# reach for the module itself (monkeypatching its WorkerPool reference).
orchestrate_mod = importlib.import_module("repro.runs.orchestrate")

LENGTH = 300


class Harness:
    """Service + HTTP listener on a private loop thread."""

    def __init__(self, cache_root, autostart=True, **service_kw):
        self.cache_root = cache_root
        self.autostart = autostart
        self.service_kw = service_kw
        self.service = None
        self.port = None
        self.loop = None
        self._ready = threading.Event()
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = SimulationService(
            cache_root=self.cache_root, **self.service_kw
        )
        if self.autostart:
            self.service.start()
        server = HttpServer(self.service)
        self.port = await server.listen_tcp("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        await server.close()
        await self.service.stop()

    def start_workers(self):
        """Release the suspended shard workers (autostart=False mode)."""
        done = threading.Event()

        def go():
            self.service.start()
            done.set()

        self.loop.call_soon_threadsafe(go)
        done.wait(5)

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "service failed to come up"
        return self

    def __exit__(self, *exc):
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)

    def client(self, timeout=30.0):
        return ServeClient(f"http://127.0.0.1:{self.port}", timeout=timeout)


def evaluate_params(length=LENGTH, seed=1, workloads=("lbm",)):
    return {"length": length, "seed": seed, "workloads": list(workloads)}


def drain(client, job_id, timeout=120.0):
    """Watch a job to its terminal event; returns the full event list."""
    events = list(client.watch(job_id, timeout=timeout))
    assert events and is_terminal_event(events[-1])
    return events


class TestCoalescing:
    def test_concurrent_identical_submits_share_one_execution(self, tmp_path):
        with Harness(tmp_path / "cache", autostart=False, shards=2) as h:
            clients = [h.client() for _ in range(4)]
            descriptors = [
                c.submit("evaluate", client=f"c{i}", params=evaluate_params())
                for i, c in enumerate(clients)
            ]
            # All four submits resolved to the same job; three coalesced.
            job_ids = {d["job_id"] for d in descriptors}
            assert len(job_ids) == 1
            job_id = job_ids.pop()
            assert h.service.totals == {
                "submitted": 1, "coalesced": 3, "completed": 0, "failed": 0,
                "deadline": 0,
            }

            h.start_workers()
            drain(clients[0], job_id)

            # Every rider fetches the result independently; the wire
            # bytes (minus timing) are identical across all of them.
            payloads = {
                wire_encode(stable_result_body(c.result(job_id)))
                for c in clients
            }
            assert len(payloads) == 1
            descriptor = clients[0].job(job_id)
            assert descriptor["state"] == "done"
            assert descriptor["coalesced"] == 3
            assert h.service.totals["completed"] == 1

    def test_resubmit_after_completion_is_a_fresh_warm_job(self, tmp_path):
        with Harness(tmp_path / "cache") as h:
            client = h.client()
            first = client.run("evaluate", params=evaluate_params())
            second_descriptor = client.submit(
                "evaluate", params=evaluate_params()
            )
            # Not coalesced — the first job already left the active set.
            assert second_descriptor["job_id"] != first["job"]["job_id"]
            drain(client, second_descriptor["job_id"])
            second = client.result(second_descriptor["job_id"])
            assert second["job"]["executed"] == 0
            assert second["job"]["cache_hits"] == second["job"]["total"]
            # The result document is byte-identical apart from run metadata.
            cold = dict(first["result"], run=None)
            warm = dict(second["result"], run=None)
            assert (
                json.dumps(cold, sort_keys=True) == json.dumps(warm, sort_keys=True)
            )


class TestAdmission:
    def test_quota_and_depth_rejections(self, tmp_path):
        with Harness(
            tmp_path / "cache", autostart=False, quota=1, max_depth=2
        ) as h:
            client = h.client()
            first = client.submit(
                "evaluate", client="alice", params=evaluate_params(length=300)
            )
            with pytest.raises(ServeError) as over_quota:
                client.submit(
                    "evaluate", client="alice", params=evaluate_params(length=301)
                )
            assert over_quota.value.status == 429
            second = client.submit(
                "evaluate", client="bob", params=evaluate_params(length=302)
            )
            with pytest.raises(ServeError) as queue_full:
                client.submit(
                    "evaluate", client="carol", params=evaluate_params(length=303)
                )
            assert queue_full.value.status == 503

            # Slots are credited back at the terminal state.
            h.start_workers()
            drain(client, first["job_id"])
            drain(client, second["job_id"])
            third = client.submit(
                "evaluate", client="alice", params=evaluate_params(length=304)
            )
            drain(client, third["job_id"])
            assert h.service.queue.snapshot()["in_flight"] == 0


class TestStreaming:
    def test_stream_has_progress_per_cell_and_ends_terminal(self, tmp_path):
        with Harness(tmp_path / "cache") as h:
            client = h.client()
            descriptor = client.submit(
                "evaluate", params=evaluate_params(workloads=("lbm", "gcc"))
            )
            events = drain(client, descriptor["job_id"])
            kinds = [e["event"] for e in events]
            assert kinds[0] == "queued"
            assert "started" in kinds
            progress = [e for e in events if e["event"] == "progress"]
            # One progress event per completed cell (2 workloads x 5 designs).
            assert len(progress) == 2 * len(FIGURE5_DESIGNS)
            assert [e["data"]["done"] for e in progress] == list(
                range(1, len(progress) + 1)
            )
            assert kinds[-1] == "done"
            assert "summary" in events[-1]["data"]
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

            # A late watcher replays the identical history, still
            # terminated by the terminal event.
            replay = drain(client, descriptor["job_id"])
            assert replay == events


class TestWarmCache:
    def test_warm_submit_never_touches_the_pool(self, tmp_path, monkeypatch):
        with Harness(tmp_path / "cache") as h:
            client = h.client()
            client.run("evaluate", params=evaluate_params())

            class ForbiddenPool:
                def __init__(self, *args, **kwargs):
                    raise AssertionError(
                        "WorkerPool constructed on a warm-cache submit"
                    )

            monkeypatch.setattr(orchestrate_mod, "WorkerPool", ForbiddenPool)
            warm = client.run("evaluate", params=evaluate_params())
            assert warm["job"]["state"] == "done"
            assert warm["job"]["executed"] == 0
            assert warm["job"]["cache_hits"] == warm["job"]["total"]


class TestRestartResume:
    def test_journal_resumes_interrupted_sweep(self, tmp_path):
        cache_root = tmp_path / "cache"
        cache = ResultCache(cache_root, fingerprint=code_fingerprint())
        specs = [
            simulation_spec(scheme, "lbm", LENGTH, 1)
            for scheme in FIGURE5_DESIGNS
        ]
        # A previous daemon got through two cells before dying: its
        # journal (named exactly like the service names it) holds two
        # completed records.
        journal_path = sweep_journal_path(cache, "serve-evaluate", specs)
        with RunJournal(journal_path, cache.fingerprint) as journal:
            run_specs(specs[:2], jobs=1, cache=cache, journal=journal)
        # The cache itself was lost (evicted/removed) — only the journal
        # survives, which is the harder resume path.
        shutil.rmtree(cache.results_dir)

        with Harness(cache_root) as h:
            client = h.client()
            descriptor = client.submit("evaluate", params=evaluate_params())
            drain(client, descriptor["job_id"])
            job = client.job(descriptor["job_id"])
            assert job["state"] == "done"
            # Two cells resumed from the journal, three executed fresh —
            # every cell accounted for exactly once.
            assert job["journal_hits"] == 2
            assert job["executed"] == len(specs) - 2
            assert job["done"] == len(specs)
            result = client.result(descriptor["job_id"])
            assert result["result"]["run"]["journal_hits"] == 2
