"""Full-system simulation coherence: the trace pipeline drives real
functional state, and the paper's first-order comparisons emerge from it."""

import pytest

from repro.sim.runner import run_design_comparison, run_simulation
from repro.workloads import synthetic
from repro.workloads.spec import spec_trace
from tests.conftest import SMALL_CAPACITY, small_config


@pytest.fixture(scope="module")
def write_heavy_comparison():
    trace = synthetic.sequential_stream(
        length=800, footprint=1 << 17, write_ratio=0.5, mem_gap=6, seed=3,
        name="stream-w",
    )
    return run_design_comparison(
        trace, config=small_config(), data_capacity=SMALL_CAPACITY
    )


class TestPaperShape:
    """Down-scaled sanity versions of Figure 5's orderings (full-scale
    reproductions live in benchmarks/)."""

    def test_sc_has_most_writes(self, write_heavy_comparison):
        cmp = write_heavy_comparison
        others = ("no_cc", "osiris_plus", "ccnvm_no_ds", "ccnvm")
        assert all(
            cmp.normalized_writes("sc") > cmp.normalized_writes(o) for o in others
        )

    def test_osiris_writes_near_baseline(self, write_heavy_comparison):
        assert write_heavy_comparison.normalized_writes("osiris_plus") < 1.3

    def test_ccnvm_writes_above_osiris_below_sc(self, write_heavy_comparison):
        cmp = write_heavy_comparison
        assert (
            cmp.normalized_writes("osiris_plus")
            <= cmp.normalized_writes("ccnvm")
            < cmp.normalized_writes("sc")
        )

    def test_ccnvm_fastest_consistent_design(self, write_heavy_comparison):
        cmp = write_heavy_comparison
        for other in ("sc", "osiris_plus", "ccnvm_no_ds"):
            assert cmp.normalized_ipc("ccnvm") >= cmp.normalized_ipc(other)

    def test_baseline_is_upper_bound(self, write_heavy_comparison):
        cmp = write_heavy_comparison
        for scheme in ("sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"):
            assert cmp.normalized_ipc(scheme) <= 1.001

    def test_ds_reduces_hmac_computations(self, write_heavy_comparison):
        cmp = write_heavy_comparison
        assert (
            cmp.results["ccnvm"].counter_hmacs
            < cmp.results["ccnvm_no_ds"].counter_hmacs
        )

    def test_identical_functional_work(self, write_heavy_comparison):
        # Every design retires the same trace: same LLC write-back count.
        wbs = {r.llc_writebacks for r in write_heavy_comparison.results.values()}
        assert len(wbs) == 1


class TestFunctionalCoherenceUnderSimulation:
    def test_crash_midrun_then_recover_and_continue(self):
        """Simulate, crash without flushing, recover, keep simulating."""
        from repro.core.schemes import create_scheme
        from repro.sim.cpu import TraceCPU
        from repro.sim.system import MemoryHierarchy

        config = small_config()
        scheme = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=5)
        memory = MemoryHierarchy(config, scheme)
        cpu = TraceCPU(config, memory)
        first = synthetic.hotspot(
            length=400, footprint=1 << 16, write_ratio=0.5, seed=1, name="a"
        )
        cpu.run(first)
        memory.crash()
        report = scheme.recover()
        assert report.success
        second = synthetic.hotspot(
            length=400, footprint=1 << 16, write_ratio=0.5, seed=2, name="b"
        )
        result = cpu.run(second)  # must not raise IntegrityError
        assert result.instructions > 0

    def test_sensitivity_direction_update_limit(self):
        """Figure 6(a)'s direction: larger N -> fewer drains, fewer writes."""
        trace = synthetic.hotspot(
            length=700, footprint=1 << 15, write_ratio=0.5, seed=4
        )
        small_n = run_simulation(
            "ccnvm", trace, small_config(update_limit=2), SMALL_CAPACITY
        )
        large_n = run_simulation(
            "ccnvm", trace, small_config(update_limit=32), SMALL_CAPACITY
        )
        assert large_n.epochs < small_n.epochs
        assert large_n.nvm_writes <= small_n.nvm_writes

    def test_sensitivity_direction_queue_entries(self):
        """Figure 6(b)'s direction: larger M -> longer epochs."""
        trace = synthetic.random_uniform(
            length=700, footprint=1 << 18, write_ratio=0.5, seed=4
        )
        small_m = run_simulation(
            "ccnvm", trace, small_config(dirty_queue_entries=8), SMALL_CAPACITY
        )
        large_m = run_simulation(
            "ccnvm", trace, small_config(dirty_queue_entries=64), SMALL_CAPACITY
        )
        assert large_m.epochs < small_m.epochs
        assert large_m.nvm_writes <= small_m.nvm_writes

    def test_spec_profile_runs_end_to_end(self):
        # gcc's surrogate footprint is 4 MB; give the device room.
        result = run_simulation(
            "ccnvm", spec_trace("gcc", 600, seed=1), small_config(), 16 << 20
        )
        assert result.ipc > 0
        assert result.workload == "gcc"
