"""Integration tests for the workload frontier (repro.trafficgen).

The acceptance surface:

* the ACE k=3 enumeration runs **exhaustively** through the crash
  campaign on all six schemes with zero violations, at a >= 5x
  canonical-form dedup over the brute-force space;
* an ingested external trace and a 3-tenant interleave produce a
  traffic headline document that is **byte-identical** across serial,
  pooled (``--jobs 2``) and warm-cache runs;
* descriptor-bearing specs submit successfully through the serve
  daemon (kind ``specs``) and come back with per-spec payloads.
"""

import asyncio
import threading
from pathlib import Path

import pytest

from repro.analysis.traffic import (
    traffic_document,
    traffic_document_from_json,
    traffic_document_to_json,
    traffic_specs,
)
from repro.crashsim.explore import run_campaign
from repro.serve.client import ServeClient
from repro.serve.http import HttpServer
from repro.serve.protocol import is_terminal_event
from repro.serve.service import SimulationService
from repro.trafficgen.ace import ace_campaign_config, dedup_ratio
from repro.trafficgen.descriptor import interleave_descriptor
from repro.trafficgen.ingest import STORE_ENV, TraceStore

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "traces"

KB = 1 << 10
SCHEMES = ("sc", "ccnvm")
LENGTH = 2000
SEED = 3


def tenant(name, footprint=8 * KB, write_ratio=0.6, weight=1.0):
    return {
        "name": name,
        "weight": weight,
        "profile": {
            "name": name,
            "pattern": "stream",
            "footprint": footprint,
            "write_ratio": write_ratio,
            "mem_gap": 4,
        },
    }


def three_tenant_descriptor():
    return interleave_descriptor(
        [
            tenant("alice"),
            tenant("bob", write_ratio=0.3, weight=2.0),
            tenant("carol", footprint=4 * KB),
        ],
        policy="weighted",
    )


@pytest.fixture
def workload_set(tmp_path, monkeypatch):
    """The bench's descriptors: the committed 10k trace + 3 tenants.

    The trace store root travels to pool workers through the
    environment, exactly as ``repro traffic ingest --run --jobs N``
    ships it.
    """
    store_root = tmp_path / "traffic-store"
    monkeypatch.setenv(STORE_ENV, str(store_root))
    trace_desc = TraceStore(store_root).ingest(
        FIXTURES / "llc_10k.csv", footprint=1 << 20
    )
    return [trace_desc, three_tenant_descriptor()]


class TestByteIdentity:
    def test_serial_pooled_and_warm_documents_are_byte_identical(
        self, tmp_path, workload_set
    ):
        kw = dict(schemes=SCHEMES, length=LENGTH, seed=SEED)
        serial_doc, serial_report = traffic_document(
            workload_set, cache_root=tmp_path / "cold-serial", **kw
        )
        pooled_doc, _ = traffic_document(
            workload_set, jobs=2, cache_root=tmp_path / "cold-pooled", **kw
        )
        warm_doc, warm_report = traffic_document(
            workload_set, cache_root=tmp_path / "cold-serial", **kw
        )
        serial = traffic_document_to_json(serial_doc)
        assert traffic_document_to_json(pooled_doc) == serial
        assert traffic_document_to_json(warm_doc) == serial
        # The warm run really was served from the cache, and the cold
        # one really executed.
        assert serial_report.executed == len(workload_set) * len(SCHEMES)
        assert warm_report.executed == 0
        assert warm_report.cache_hits == len(workload_set) * len(SCHEMES)

    def test_document_is_self_describing(self, tmp_path, workload_set):
        doc, _ = traffic_document(
            workload_set,
            schemes=SCHEMES,
            length=LENGTH,
            seed=SEED,
            cache_root=tmp_path / "cache",
        )
        parsed = traffic_document_from_json(traffic_document_to_json(doc))
        assert len(parsed["workloads"]) == 2
        for label, entry in parsed["workloads"].items():
            assert label.startswith("traffic:")
            assert entry["digest"].startswith(label.split(":")[2])
            assert sorted(parsed["results"][label]) == sorted(SCHEMES)
        [interleave] = [
            w for w in parsed["workloads"].values()
            if w["descriptor"]["kind"] == "interleave"
        ]
        attribution = interleave["attribution"]
        assert sorted(attribution["tenants"]) == ["alice", "bob", "carol"]
        assert sum(
            t["references"] for t in attribution["tenants"].values()
        ) == LENGTH
        for results in parsed["results"].values():
            for cell in results.values():
                assert cell["instructions"] > 0
                assert cell["nvm_writes"] > 0


class TestAceCampaign:
    def test_k3_exhaustive_on_all_six_schemes_zero_violations(
        self, tmp_path
    ):
        """The standing-campaign gate the CLI (`repro traffic ace
        --campaign`) and CI enforce, at the acceptance bar: every
        canonical 3-write workload on every scheme, exhaustively
        enumerated, zero violations."""
        summary, report = run_campaign(
            ace_campaign_config(3), cache_root=tmp_path / "cache"
        )
        report.raise_on_failure()
        totals = summary["totals"]
        assert summary["failures"] == []
        assert totals["cells"] == 40 * 6  # Bell(3)*2^3 profiles x schemes
        assert totals["violations"] == 0
        assert totals["class_mismatches"] == 0
        assert totals["sampling_fallbacks"] == 0
        assert dedup_ratio(3) >= 5


class Harness:
    """Service + HTTP listener on a private loop thread.

    Same shape as the serve integration harness: the real
    SimulationService + HttpServer on an ephemeral port, talked to with
    the real ServeClient — ``repro serve`` minus the process boundary.
    """

    def __init__(self, cache_root):
        self.cache_root = cache_root
        self.service = None
        self.port = None
        self.loop = None
        self._ready = threading.Event()
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        asyncio.run(self._main())

    async def _main(self):
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = SimulationService(cache_root=self.cache_root)
        self.service.start()
        server = HttpServer(self.service)
        self.port = await server.listen_tcp("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        await server.close()
        await self.service.stop()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(10), "service failed to come up"
        return self

    def __exit__(self, *exc):
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)

    def client(self, timeout=120.0):
        return ServeClient(f"http://127.0.0.1:{self.port}", timeout=timeout)


class TestServeSubmission:
    def test_descriptor_specs_run_through_the_daemon(
        self, tmp_path, workload_set
    ):
        """Descriptor-bearing RunSpecs are ordinary ``specs`` jobs: the
        daemon executes them (resolving the trace store from the
        environment) and returns one payload per spec hash."""
        _, specs = traffic_specs(
            workload_set, schemes=("ccnvm",), length=800, seed=2
        )
        with Harness(tmp_path / "serve-cache") as h:
            client = h.client()
            descriptor = client.submit(
                "specs",
                client="trafficgen-test",
                specs=[s.to_dict() for s in specs],
            )
            job_id = descriptor["job_id"]
            events = list(client.watch(job_id, timeout=120.0))
            assert events and is_terminal_event(events[-1])
            result = client.result(job_id)
        payload = result["result"]
        assert payload["kind"] == "specs"
        assert "errors" not in payload
        assert sorted(payload["results"]) == sorted(
            s.spec_hash() for s in specs
        )
        # The payloads are real simulation results, carrying the
        # materialized trace's human name (the spec label stays the
        # descriptor's content label).
        names = {
            payload["results"][s.spec_hash()]["workload"] for s in specs
        }
        assert names == {"llc_10k", "interleave:alice+bob+carol"}
        for spec in specs:
            assert payload["results"][spec.spec_hash()]["nvm_writes"] > 0
