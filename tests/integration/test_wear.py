"""NVM endurance: write amplification "negatively impacts NVM lifetime"
(Section 5.2).  Beyond aggregate traffic, *where* the writes land matters
for wear: SC hammers the hot pages' metadata lines on every write-back,
while cc-NVM's epochs cap any metadata line at one write per drain."""

import random

import pytest

from repro.core.schemes import create_scheme
from tests.conftest import SMALL_CAPACITY, small_config


def run_hot_workload(scheme_name, config, writebacks=300):
    scheme = create_scheme(scheme_name, config, SMALL_CAPACITY, seed=17)
    rng = random.Random(3)
    t = 0
    for i in range(writebacks):
        addr = rng.randrange(4) * 4096 + rng.randrange(8) * 64  # hot set
        scheme.writeback(t, addr, bytes([i % 256]) * 64)
        t += 400
    scheme.flush()
    return scheme


@pytest.fixture(scope="module")
def machines():
    config = small_config()
    return {
        name: run_hot_workload(name, config)
        for name in ("no_cc", "sc", "osiris_plus", "ccnvm")
    }


def hottest_metadata_write_count(scheme):
    layout = scheme.layout
    return max(
        (
            scheme.nvm.write_count(addr)
            for addr in scheme.nvm.touched_lines()
            if layout.region_of(addr) in ("counter", "merkle")
        ),
        default=0,
    )


class TestMetadataWear:
    def test_sc_wears_metadata_hardest(self, machines):
        sc = hottest_metadata_write_count(machines["sc"])
        for name in ("no_cc", "osiris_plus", "ccnvm"):
            assert sc > hottest_metadata_write_count(machines[name]), name

    def test_sc_metadata_wear_tracks_writebacks(self, machines):
        # Every write-back rewrites the hot counter line and the shared
        # top-of-tree nodes: wear ~ number of write-backs.
        assert hottest_metadata_write_count(machines["sc"]) >= 250

    def test_ccnvm_caps_metadata_wear_per_epoch(self, machines):
        scheme = machines["ccnvm"]
        epochs = scheme.queue.total_drains
        # One write per line per drain is the cap; overflow-free run.
        assert hottest_metadata_write_count(scheme) <= epochs

    def test_epoch_amortization_factor(self, machines):
        """The wear advantage equals the epoch length in write-backs."""
        scheme = machines["ccnvm"]
        per_epoch = scheme.queue.stats.distribution("epoch_writebacks").mean
        sc_wear = hottest_metadata_write_count(machines["sc"])
        ccnvm_wear = hottest_metadata_write_count(scheme)
        assert sc_wear / max(1, ccnvm_wear) > per_epoch / 2

    def test_data_wear_identical_across_designs(self, machines):
        """Designs only differ in metadata wear; data wear is workload-set."""
        reference = {
            addr: machines["ccnvm"].nvm.write_count(addr)
            for addr in machines["ccnvm"].nvm.touched_lines()
            if machines["ccnvm"].layout.region_of(addr) == "data"
        }
        for name, scheme in machines.items():
            for addr, count in reference.items():
                assert scheme.nvm.write_count(addr) == count, (name, hex(addr))
