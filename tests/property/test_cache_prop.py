"""Model-based property tests: the set-associative cache against a
reference LRU implementation."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.config import CacheConfig
from repro.mem.cache import Cache


class ReferenceLRU:
    """Oracle: per-set OrderedDict LRU with identical semantics."""

    def __init__(self, sets, ways):
        self.sets = [OrderedDict() for _ in range(sets)]
        self.ways = ways
        self.num_sets = sets

    def _set(self, addr):
        return self.sets[(addr >> 6) % self.num_sets]

    def access(self, addr):
        s = self._set(addr)
        if addr in s:
            s.move_to_end(addr)
            return True
        return False

    def fill(self, addr):
        s = self._set(addr)
        if addr in s:
            s.move_to_end(addr)
            return None
        victim = None
        if len(s) >= self.ways:
            victim, _ = s.popitem(last=False)
        s[addr] = True
        return victim

    def contents(self):
        return sorted(addr for s in self.sets for addr in s)


ops = st.lists(
    st.tuples(
        st.sampled_from(["access", "fill", "invalidate"]),
        st.integers(min_value=0, max_value=63).map(lambda i: i * 64),
    ),
    max_size=200,
)


@given(ops)
@settings(max_examples=200, deadline=None)
def test_cache_matches_reference_lru(operations):
    config = CacheConfig(size_bytes=4 * 4 * 64, associativity=4, hit_latency=1)
    cache = Cache(config)
    oracle = ReferenceLRU(config.num_sets, config.associativity)

    for op, addr in operations:
        if op == "access":
            assert (cache.access(addr) is not None) == oracle.access(addr)
        elif op == "fill":
            victim = cache.fill(addr)
            expected = oracle.fill(addr)
            assert (victim.addr if victim else None) == expected
        else:
            cache.invalidate(addr)
            oracle._set(addr).pop(addr, None)
        assert sorted(l.addr for l in cache.lines()) == oracle.contents()
        assert cache.occupancy <= config.num_lines


@given(ops)
@settings(max_examples=100, deadline=None)
def test_would_evict_predicts_fill(operations):
    config = CacheConfig(size_bytes=2 * 4 * 64, associativity=2, hit_latency=1)
    cache = Cache(config)
    for op, addr in operations:
        predicted = cache.would_evict(addr)
        victim = cache.fill(addr)
        if victim is None:
            assert predicted is None
        else:
            assert predicted is victim


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=31).map(lambda i: i * 64),
            st.booleans(),
        ),
        max_size=120,
    )
)
@settings(max_examples=100, deadline=None)
def test_dirty_bit_is_sticky_until_cleaned(fills):
    config = CacheConfig(size_bytes=8 * 64, associativity=8, hit_latency=1)
    cache = Cache(config)
    expected_dirty: dict[int, bool] = {}
    for addr, dirty in fills:
        victim = cache.fill(addr, dirty=dirty)
        if victim is not None:
            assert expected_dirty.pop(victim.addr) == victim.dirty
        expected_dirty[addr] = expected_dirty.get(addr, False) or dirty
    for line in cache.lines():
        assert line.dirty == expected_dirty[line.addr]
    assert {l.addr for l in cache.dirty_lines()} == {
        a for a, d in expected_dirty.items() if d and cache.probe(a)
    }


@given(st.lists(st.integers(min_value=0, max_value=10_000), max_size=100))
@settings(max_examples=100, deadline=None)
def test_hashed_and_plain_indexing_agree_on_contents(line_indexes):
    """Set hashing only permutes placement — hit behaviour on a
    fully-associative-sized working set is index-scheme independent."""
    plain = Cache(CacheConfig(size_bytes=64 * 64, associativity=64, hit_latency=1))
    hashed = Cache(
        CacheConfig(
            size_bytes=64 * 64, associativity=64, hit_latency=1, hashed_sets=True
        )
    )
    for index in line_indexes:
        addr = index * 64
        plain.fill(addr)
        hashed.fill(addr)
    assert sorted(l.addr for l in plain.lines()) == sorted(
        l.addr for l in hashed.lines()
    )
