"""Property-based tests for the split-counter codec."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import (
    BLOCKS_PER_PAGE,
    MINOR_COUNTER_MAX,
)
from repro.metadata.counters import CounterLine


majors = st.integers(min_value=0, max_value=(1 << 64) - 1)
minors = st.lists(
    st.integers(min_value=0, max_value=MINOR_COUNTER_MAX),
    min_size=BLOCKS_PER_PAGE,
    max_size=BLOCKS_PER_PAGE,
)
blocks = st.integers(min_value=0, max_value=BLOCKS_PER_PAGE - 1)


@given(majors, minors)
def test_encode_decode_roundtrip(major, ms):
    line = CounterLine(major, ms)
    assert CounterLine.decode(line.encode()) == line


@given(majors, minors)
def test_encoding_is_injective_on_distinct_lines(major, ms):
    line = CounterLine(major, ms)
    other = line.copy()
    other.increment(0)
    assert line.encode() != other.encode()


@given(minors, blocks)
def test_increment_touches_only_target_minor(ms, block):
    line = CounterLine(0, ms)
    before = list(line.minors)
    overflowed = line.increment(block)
    if overflowed:
        assert line.minors == [0] * BLOCKS_PER_PAGE
        assert line.major == 1
    else:
        for i in range(BLOCKS_PER_PAGE):
            expected = before[i] + 1 if i == block else before[i]
            assert line.minors[i] == expected


@given(blocks, st.integers(min_value=1, max_value=300))
def test_increment_sequence_matches_arithmetic(block, count):
    """k increments of one block == (k mod 128 advances, k//128... ) —
    verified by replaying the arithmetic independently."""
    line = CounterLine()
    majors_seen = 0
    for _ in range(count):
        if line.increment(block):
            majors_seen += 1
    total = count
    assert line.major == majors_seen
    expected_minor = total - majors_seen * (MINOR_COUNTER_MAX + 1)
    assert line.minors[block] == expected_minor


@given(majors, minors, blocks)
def test_counter_pair_consistency(major, ms, block):
    line = CounterLine(major, ms)
    assert line.counter_pair(block) == (major, ms[block])


@given(minors)
@settings(max_examples=30)
def test_copy_independence(ms):
    line = CounterLine(3, ms)
    clone = line.copy()
    clone.increment(5)
    assert line.minors == ms
    assert line.major == 3


@given(st.binary(min_size=64, max_size=64))
def test_decode_never_crashes_on_arbitrary_lines(raw):
    """Any 64 B image decodes (an attacker can write anything)."""
    line = CounterLine.decode(raw)
    assert 0 <= line.major < 1 << 64
    assert all(0 <= m <= MINOR_COUNTER_MAX for m in line.minors)
    # Canonical re-encode reproduces the same decoded state.
    assert CounterLine.decode(line.encode()) == line
