"""Property-based tests for the crypto substrate."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.constants import CACHE_LINE_SIZE
from repro.crypto.cme import CounterModeCipher, make_seed
from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey, keyed_hash, prf


KEY = SecretKey.from_seed("prop-key")
CIPHER = CounterModeCipher(KEY)
ENGINE = HmacEngine(KEY)

lines = st.binary(min_size=CACHE_LINE_SIZE, max_size=CACHE_LINE_SIZE)
addrs = st.integers(min_value=0, max_value=(1 << 34)).map(lambda a: a & ~63)
# make_seed's major field is 64 bits; keep major + 1 inside the domain so
# the uniqueness test below can probe the neighbouring counter value.
majors = st.integers(min_value=0, max_value=(1 << 64) - 2)
minor_values = st.integers(min_value=0, max_value=127)


@given(lines, addrs, majors, minor_values)
def test_encrypt_decrypt_roundtrip(data, addr, major, minor):
    ct = CIPHER.encrypt(data, addr, major, minor)
    assert CIPHER.decrypt(ct, addr, major, minor) == data


@given(lines, addrs, majors, minor_values)
@settings(max_examples=50)
def test_encryption_changes_data(data, addr, major, minor):
    # A 64-byte pad collision with the plaintext has probability 2^-512.
    assert CIPHER.encrypt(data, addr, major, minor) != data


@given(lines, addrs, majors, minor_values)
def test_wrong_minor_garbles(data, addr, major, minor):
    ct = CIPHER.encrypt(data, addr, major, minor)
    assert CIPHER.decrypt(ct, addr, major, (minor + 1) % 128) != data


@given(lines, lines, addrs, majors, minor_values)
@settings(max_examples=50)
def test_xor_malleability_is_why_hmacs_exist(a, b, addr, major, minor):
    """CME is malleable (bit flips pass through); the data HMAC is the
    integrity mechanism, so flipping ciphertext must break it."""
    ct = CIPHER.encrypt(a, addr, major, minor)
    code = ENGINE.data_hmac(ct, addr, major, minor)
    flipped = bytes([ct[0] ^ 0x01]) + ct[1:]
    assert ENGINE.data_hmac(flipped, addr, major, minor) != code


@given(addrs, majors, minor_values)
def test_seed_uniqueness_over_components(addr, major, minor):
    base = make_seed(addr, major, minor)
    assert make_seed(addr + 64, major, minor) != base
    assert make_seed(addr, major + 1, minor) != base
    assert make_seed(addr, major, (minor + 1) % 128) != base or minor == 127


@given(st.binary(max_size=128), st.binary(max_size=128))
@settings(max_examples=60)
def test_prf_injective_encoding(a, b):
    if a != b:
        assert prf(KEY, a) != prf(KEY, b)


@given(st.binary(max_size=64), st.integers(min_value=1, max_value=256))
def test_prf_output_length_exact(message, out_len):
    assert len(prf(KEY, message, out_len=out_len)) == out_len


@given(st.binary(max_size=64))
def test_prf_prefix_stability(message):
    """Longer outputs extend shorter ones (counter-mode expansion)."""
    short = prf(KEY, message, out_len=16)
    long = prf(KEY, message, out_len=64)
    assert long[:16] == short


@given(lines, addrs, majors, minor_values)
def test_data_hmac_deterministic(data, addr, major, minor):
    assert ENGINE.data_hmac(data, addr, major, minor) == ENGINE.data_hmac(
        data, addr, major, minor
    )


@given(lines, addrs, addrs, majors, minor_values)
@settings(max_examples=60)
def test_data_hmac_address_binding(data, addr_a, addr_b, major, minor):
    """The splicing defence: same data at two addresses never shares a code."""
    if addr_a != addr_b:
        assert ENGINE.data_hmac(data, addr_a, major, minor) != ENGINE.data_hmac(
            data, addr_b, major, minor
        )


@given(st.binary(max_size=96), st.binary(max_size=96))
@settings(max_examples=60)
def test_keyed_hash_collision_freedom_on_distinct_messages(a, b):
    if a != b:
        assert keyed_hash(KEY, a) != keyed_hash(KEY, b)
