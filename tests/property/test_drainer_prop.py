"""Property-based tests for the dirty address queue and the WPQ."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.drainer import DirtyAddressQueue, DrainTrigger
from repro.mem.nvm import NVMDevice
from repro.mem.wpq import WritePendingQueue
from repro.metadata.layout import MemoryLayout


addr_lists = st.lists(
    st.integers(min_value=0, max_value=30).map(lambda i: i * 64), max_size=12
)


@given(st.lists(addr_lists, max_size=15))
@settings(max_examples=100, deadline=None)
def test_queue_never_exceeds_capacity_and_never_duplicates(batches):
    queue = DirtyAddressQueue(16)
    for batch in batches:
        if queue.fits(batch):
            queue.reserve(batch)
        else:
            queue.commit(DrainTrigger.QUEUE_FULL)
            queue.reserve(batch) if queue.fits(batch) else None
        addrs = queue.addresses()
        assert len(addrs) == len(set(addrs))
        assert len(addrs) <= 16


@given(st.lists(addr_lists, min_size=1, max_size=10))
@settings(max_examples=100, deadline=None)
def test_commit_returns_exactly_the_reserved_set(batches):
    queue = DirtyAddressQueue(256)
    expected: list[int] = []
    for batch in batches:
        for a in batch:
            if a not in expected:
                expected.append(a)
        queue.reserve(batch)
    assert queue.commit(DrainTrigger.FLUSH) == expected
    assert len(queue) == 0


@given(addr_lists)
@settings(max_examples=100, deadline=None)
def test_fits_is_exact(batch):
    queue = DirtyAddressQueue(4)
    distinct = len(set(batch))
    assert queue.fits(batch) == (distinct <= 4)


wpq_programs = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 15)),
        st.tuples(st.just("atomic"), st.lists(st.integers(0, 15), max_size=6)),
        st.tuples(st.just("crashed_atomic"), st.lists(st.integers(0, 15), max_size=6)),
    ),
    max_size=12,
)


@given(wpq_programs)
@settings(max_examples=100, deadline=None)
def test_wpq_durability_model(program):
    """Normal writes and committed batches are durable; a crashed batch
    vanishes entirely — modeled against a plain dict."""
    nvm = NVMDevice(MemoryLayout(1 << 20))
    wpq = WritePendingQueue(nvm, entries=8)
    shadow: dict[int, bytes] = {}
    marker = 0
    for op, payload_arg in program:
        marker += 1
        if op == "write":
            value = bytes([marker % 256]) * 64
            wpq.write(payload_arg * 64, value)
            shadow[payload_arg * 64] = value
        elif op == "atomic":
            wpq.begin_atomic()
            for i, slot in enumerate(payload_arg):
                value = bytes([(marker + i) % 256]) * 64
                wpq.write_atomic(slot * 64, value)
                shadow[slot * 64] = value
            wpq.commit_atomic()
        else:  # crashed_atomic
            wpq.begin_atomic()
            for i, slot in enumerate(payload_arg):
                wpq.write_atomic(slot * 64, bytes([0xEE]) * 64)
            wpq.power_failure()  # batch dropped wholesale
    for addr, value in shadow.items():
        assert nvm.peek(addr) == value
    # Nothing from crashed batches may have leaked.
    for addr in range(0, 16 * 64, 64):
        if addr not in shadow:
            assert nvm.peek(addr) == bytes(64)
