"""Property-based tests for the address map and tree geometry."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.constants import CACHE_LINE_SIZE, MERKLE_ARITY, PAGE_SIZE
from repro.metadata.layout import MemoryLayout, MerkleNodeId


LAYOUTS = {
    64 * 1024: MemoryLayout(64 * 1024),
    1 << 20: MemoryLayout(1 << 20),
    16 << 30: MemoryLayout(16 << 30),
}
capacities = st.sampled_from(sorted(LAYOUTS))


@st.composite
def layout_and_addr(draw):
    layout = LAYOUTS[draw(capacities)]
    addr = draw(st.integers(min_value=0, max_value=layout.data_capacity - 1))
    return layout, addr


@given(layout_and_addr())
def test_regions_partition_the_device(args):
    layout, addr = args
    assert layout.region_of(addr) == "data"
    assert layout.region_of(layout.counter_line_addr(addr)) == "counter"
    hmac_line, _ = layout.data_hmac_location(addr)
    assert layout.region_of(hmac_line) == "data_hmac"


@given(layout_and_addr())
def test_counter_line_shared_exactly_by_page(args):
    layout, addr = args
    page_start = (addr // PAGE_SIZE) * PAGE_SIZE
    counter = layout.counter_line_addr(addr)
    assert layout.counter_line_addr(page_start) == counter
    assert layout.counter_line_addr(page_start + PAGE_SIZE - 1) == counter
    if page_start + PAGE_SIZE < layout.data_capacity:
        assert layout.counter_line_addr(page_start + PAGE_SIZE) != counter


@given(layout_and_addr())
def test_data_hmac_slots_never_collide_within_a_line(args):
    layout, addr = args
    line = (addr // CACHE_LINE_SIZE) * CACHE_LINE_SIZE
    seen = set()
    for i in range(4):
        neighbour = line - (line // CACHE_LINE_SIZE % 4) * CACHE_LINE_SIZE + i * CACHE_LINE_SIZE
        if 0 <= neighbour < layout.data_capacity:
            seen.add(layout.data_hmac_location(neighbour))
    assert len(seen) == len({s for s in seen})  # all distinct (line, offset)


@given(layout_and_addr())
def test_ancestor_chain_reaches_root_with_consistent_slots(args):
    layout, addr = args
    leaf = layout.counter_leaf_index(addr)
    node = MerkleNodeId(0, leaf)
    chain = layout.ancestors_of_leaf(leaf)
    assert chain[-1] == layout.root
    for parent in chain:
        assert layout.parent_of(node) == parent
        kids = layout.children_of(parent)
        assert node in kids
        assert kids[layout.slot_in_parent(node)] == node
        node = parent


@given(layout_and_addr())
def test_node_addr_roundtrip_along_path(args):
    layout, addr = args
    leaf = layout.counter_leaf_index(addr)
    for node in [MerkleNodeId(0, leaf)] + layout.ancestors_of_leaf(leaf):
        if node.level == layout.root_level:
            continue
        assert layout.node_of_addr(layout.merkle_node_addr(node)) == node


@given(layout_and_addr())
def test_writeback_metadata_set_is_path(args):
    layout, addr = args
    addrs = layout.metadata_addresses_for_writeback(addr)
    # Exactly one address per NVM-resident tree level, no duplicates.
    assert len(addrs) == len(set(addrs)) == layout.root_level
    levels = sorted(layout.node_of_addr(a).level for a in addrs)
    assert levels == list(range(layout.root_level))


@given(capacities)
def test_level_counts_shrink_by_arity(capacity):
    layout = LAYOUTS[capacity]
    for level in range(1, layout.num_levels):
        lower, upper = layout.level_counts[level - 1], layout.level_counts[level]
        assert upper == (lower + MERKLE_ARITY - 1) // MERKLE_ARITY
    assert layout.level_counts[-1] == 1


@given(capacities, st.data())
def test_distinct_metadata_addresses_for_distinct_pages(capacity, data):
    layout = LAYOUTS[capacity]
    a = data.draw(st.integers(min_value=0, max_value=layout.num_pages - 1))
    b = data.draw(st.integers(min_value=0, max_value=layout.num_pages - 1))
    if a != b:
        assert layout.counter_line_addr(a * PAGE_SIZE) != layout.counter_line_addr(
            b * PAGE_SIZE
        )
