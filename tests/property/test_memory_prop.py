"""Property-based end-to-end tests: SecureMemory against a plain dict.

The strongest invariant the system offers: through arbitrary interleavings
of stores, loads, persists, flushes, crashes and recoveries, persisted
data always reads back exactly, and unpersisted data is only ever lost at
a crash — never corrupted.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SecureMemory
from repro.metadata.merkle import MerkleTree
from tests.conftest import small_config


CAPACITY = 1 << 18  # 256 KB: 64 pages, fast whole-image recovery


@st.composite
def workloads(draw):
    """A program: a list of (op, args) steps."""
    steps = draw(
        st.lists(
            st.one_of(
                st.tuples(
                    st.just("store"),
                    st.integers(min_value=0, max_value=CAPACITY - 65),
                    st.binary(min_size=1, max_size=80),
                ),
                st.tuples(
                    st.just("load"),
                    st.integers(min_value=0, max_value=CAPACITY - 65),
                    st.integers(min_value=1, max_value=64),
                ),
                st.tuples(st.just("flush")),
                st.tuples(st.just("crash_recover")),
            ),
            max_size=30,
        )
    )
    return steps


@given(workloads(), st.sampled_from(["ccnvm", "ccnvm_no_ds", "sc", "osiris_plus"]))
@settings(max_examples=60, deadline=None)
def test_memory_behaves_like_a_dict_with_crash_semantics(steps, scheme):
    mem = SecureMemory(scheme, small_config(update_limit=8), CAPACITY, seed=1)
    shadow = bytearray(CAPACITY)  # what memory should hold
    durable = bytearray(CAPACITY)  # what a crash may roll back to

    for step in steps:
        if step[0] == "store":
            _, addr, data = step
            data = data[: CAPACITY - addr]
            mem.store(addr, data)
            shadow[addr:addr + len(data)] = data
        elif step[0] == "load":
            _, addr, size = step
            assert mem.load(addr, size) == bytes(shadow[addr:addr + size])
        elif step[0] == "flush":
            mem.flush()
            durable[:] = shadow
        else:  # crash_recover
            mem.crash()
            report = mem.recover()
            assert report.success, report
            assert report.clean
            # Cached-but-unpersisted stores may be lost: the surviving
            # state is whatever actually reached NVM — between `durable`
            # (last flush) and `shadow` (everything).  Re-sync the model
            # from the machine, but verify no third value ever appears.
            for line_start in range(0, CAPACITY, 64):
                actual = mem.load(line_start, 64)
                expected_new = bytes(shadow[line_start:line_start + 64])
                expected_old = bytes(durable[line_start:line_start + 64])
                assert actual in (expected_new, expected_old), (
                    f"line {line_start:#x} is neither the durable nor the "
                    "newest value: corruption"
                )
                shadow[line_start:line_start + 64] = actual
            durable[:] = shadow

    # Final sanity: a full flush makes everything durable and consistent.
    mem.flush()
    for line_start in range(0, CAPACITY, 64):
        assert mem.load(line_start, 64) == bytes(shadow[line_start:line_start + 64])


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=CAPACITY // 4096 - 1),
            st.integers(min_value=0, max_value=63),
            st.binary(min_size=64, max_size=64),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=40, deadline=None)
def test_tree_invariant_and_recovery_after_arbitrary_writeback_streams(writes):
    """Direct scheme-level variant: any write-back stream, then crash."""
    from repro.core.schemes import create_scheme

    scheme = create_scheme("ccnvm", small_config(update_limit=8), CAPACITY, seed=2)
    t = 0
    expected = {}
    for page, block, data in writes:
        addr = page * 4096 + block * 64
        scheme.writeback(t, addr, data)
        expected[addr] = data
        t += 400
    scheme.crash()
    report = scheme.recover()
    assert report.success
    # Post-recovery the stored tree matches both roots.
    tree = MerkleTree(scheme.nvm, scheme.hmac, scheme.genesis)
    assert tree.verify_consistent(scheme.tcb.root_old)
    assert tree.verify_consistent(scheme.tcb.root_new)
    # Every written-back block survives (write-backs are durable).
    for addr, data in expected.items():
        assert scheme.read(t, addr)[0] == data
        t += 400
