"""Property-based tests for the sparse Merkle-tree operations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey
from repro.mem.nvm import NVMDevice
from repro.metadata.counters import CounterLine
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout, MerkleNodeId
from repro.metadata.merkle import MerkleTree


ENC = SecretKey.from_seed("mp-enc")
MAC = SecretKey.from_seed("mp-mac")
CAPACITY = 1 << 18  # 64 pages, 4 levels
LAYOUT = MemoryLayout(CAPACITY)
GENESIS = GenesisImage(LAYOUT, ENC, MAC)


def make_tree():
    nvm = NVMDevice(LAYOUT, initializer=GENESIS.line)
    return MerkleTree(nvm, HmacEngine(MAC), GENESIS)


counter_updates = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=LAYOUT.num_pages - 1),
        st.integers(min_value=0, max_value=63),
        st.integers(min_value=1, max_value=127),
    ),
    min_size=1,
    max_size=25,
)


def apply_updates(tree, updates):
    for leaf, block, minor in updates:
        addr = tree.layout.merkle_node_addr(MerkleNodeId(0, leaf))
        line = CounterLine.decode(tree.nvm.peek(addr))
        line.minors[block] = minor
        tree.nvm.poke(addr, line.encode())


@given(counter_updates)
@settings(max_examples=40, deadline=None)
def test_build_always_restores_consistency(updates):
    tree = make_tree()
    apply_updates(tree, updates)
    root = tree.build()
    assert tree.verify_consistent(root)
    assert tree.find_mismatches(root) == []


@given(counter_updates)
@settings(max_examples=40, deadline=None)
def test_compute_root_equals_build_without_side_effects(updates):
    tree = make_tree()
    apply_updates(tree, updates)
    computed = tree.compute_root()
    assert computed == tree.build()


@given(counter_updates, counter_updates)
@settings(max_examples=30, deadline=None)
def test_distinct_counter_states_produce_distinct_roots(first, second):
    tree_a = make_tree()
    apply_updates(tree_a, first)
    tree_b = make_tree()
    apply_updates(tree_b, second)
    counters_a = [
        tree_a.nvm.peek(tree_a.layout.merkle_node_addr(MerkleNodeId(0, i)))
        for i in range(LAYOUT.num_pages)
    ]
    counters_b = [
        tree_b.nvm.peek(tree_b.layout.merkle_node_addr(MerkleNodeId(0, i)))
        for i in range(LAYOUT.num_pages)
    ]
    if counters_a != counters_b:
        assert tree_a.build() != tree_b.build()
    else:
        assert tree_a.build() == tree_b.build()


@given(
    counter_updates,
    st.integers(min_value=0, max_value=LAYOUT.num_pages - 1),
)
@settings(max_examples=40, deadline=None)
def test_any_single_counter_corruption_is_located(updates, victim):
    tree = make_tree()
    apply_updates(tree, updates)
    root = tree.build()
    addr = tree.layout.merkle_node_addr(MerkleNodeId(0, victim))
    raw = tree.nvm.peek(addr)
    tree.nvm.poke(addr, bytes([raw[0] ^ 0x40]) + raw[1:])
    mismatches = tree.find_mismatches(root)
    assert any(e.child == MerkleNodeId(0, victim) for e in mismatches)


@given(counter_updates, st.integers(min_value=1, max_value=2), st.data())
@settings(max_examples=40, deadline=None)
def test_any_internal_node_corruption_is_detected(updates, level, data):
    tree = make_tree()
    apply_updates(tree, updates)
    root = tree.build()
    index = data.draw(
        st.integers(min_value=0, max_value=LAYOUT.level_counts[level] - 1)
    )
    addr = tree.layout.merkle_node_addr(MerkleNodeId(level, index))
    raw = tree.nvm.peek(addr)
    tree.nvm.poke(addr, bytes([raw[0] ^ 0x40]) + raw[1:])
    assert not tree.verify_consistent(root)
