"""Property-based tests of the recovery soundness/completeness boundary.

Soundness: a clean crash (any write-back stream, any crash point) never
produces attack findings.  Completeness: any single tampering of a
touched line is reported.  Both hold for arbitrary generated histories.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.attacks import Attacker
from repro.core.schemes import create_scheme
from tests.conftest import small_config


CAPACITY = 1 << 18  # 64 pages

streams = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=15),  # page
        st.integers(min_value=0, max_value=7),  # block
        st.integers(min_value=0, max_value=255),  # payload tag
    ),
    min_size=1,
    max_size=25,
)


def run_stream(stream, seed=0, scheme_name="ccnvm"):
    scheme = create_scheme(
        scheme_name, small_config(update_limit=8), CAPACITY, seed=seed
    )
    t = 0
    for page, block, tag in stream:
        scheme.writeback(t, page * 4096 + block * 64, bytes([tag]) * 64)
        t += 400
    return scheme


@given(streams, st.booleans())
@settings(max_examples=50, deadline=None)
def test_clean_crashes_never_alarm(stream, flush_first):
    scheme = run_stream(stream)
    if flush_first:
        scheme.flush()
    scheme.crash()
    report = scheme.recover()
    assert report.success
    assert report.clean
    assert report.findings == []


@given(streams, st.integers(min_value=0, max_value=2**32), st.data())
@settings(max_examples=50, deadline=None)
def test_any_data_spoof_is_reported(stream, _salt, data):
    scheme = run_stream(stream, seed=1)
    written = sorted({p * 4096 + b * 64 for p, b, _ in stream})
    victim = data.draw(st.sampled_from(written))
    Attacker(scheme.nvm).spoof_data(victim, xor_mask=data.draw(
        st.integers(min_value=1, max_value=255)
    ))
    scheme.crash()
    report = scheme.recover()
    assert not report.clean
    assert any(
        f.kind == "data_tampering" and f.address == victim
        for f in report.findings
    )


@given(streams, st.data())
@settings(max_examples=50, deadline=None)
def test_any_hmac_spoof_is_reported(stream, data):
    scheme = run_stream(stream, seed=2)
    written = sorted({p * 4096 + b * 64 for p, b, _ in stream})
    victim = data.draw(st.sampled_from(written))
    Attacker(scheme.nvm).spoof_data_hmac(victim)
    scheme.crash()
    report = scheme.recover()
    assert any(
        f.kind == "data_tampering" and f.address == victim
        for f in report.findings
    )


@given(streams)
@settings(max_examples=30, deadline=None)
def test_locate_registers_stay_silent_on_clean_crashes(stream):
    """The extension must not trade false positives for its location
    power: clean crashes at arbitrary epoch positions raise nothing."""
    scheme = run_stream(stream, seed=3, scheme_name="ccnvm_locate")
    scheme.crash()
    report = scheme.recover()
    assert report.success
    assert report.clean
