"""Unit tests for address arithmetic helpers."""

from repro.common import address
from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE


class TestLineMath:
    def test_line_align_already_aligned(self):
        assert address.line_align(0) == 0
        assert address.line_align(128) == 128

    def test_line_align_rounds_down(self):
        assert address.line_align(65) == 64
        assert address.line_align(127) == 64

    def test_line_offset(self):
        assert address.line_offset(64) == 0
        assert address.line_offset(70) == 6
        assert address.line_offset(127) == 63

    def test_line_index_roundtrip(self):
        for addr in (0, 64, 4096, 123456 * 64):
            assert address.line_address(address.line_index(addr)) == addr

    def test_line_index_of_unaligned(self):
        assert address.line_index(65) == 1
        assert address.line_index(63) == 0

    def test_is_line_aligned(self):
        assert address.is_line_aligned(0)
        assert address.is_line_aligned(CACHE_LINE_SIZE * 7)
        assert not address.is_line_aligned(1)
        assert not address.is_line_aligned(CACHE_LINE_SIZE + 63)


class TestPageMath:
    def test_page_align(self):
        assert address.page_align(0) == 0
        assert address.page_align(PAGE_SIZE - 1) == 0
        assert address.page_align(PAGE_SIZE) == PAGE_SIZE
        assert address.page_align(PAGE_SIZE + 17) == PAGE_SIZE

    def test_page_index_roundtrip(self):
        for idx in (0, 1, 57, 4095):
            assert address.page_index(address.page_address(idx)) == idx

    def test_block_in_page_range(self):
        assert address.block_in_page(0) == 0
        assert address.block_in_page(63) == 0
        assert address.block_in_page(64) == 1
        assert address.block_in_page(PAGE_SIZE - 1) == 63
        assert address.block_in_page(PAGE_SIZE) == 0

    def test_block_in_page_mid_page(self):
        addr = PAGE_SIZE * 3 + 17 * CACHE_LINE_SIZE + 5
        assert address.block_in_page(addr) == 17


class TestLinesCovering:
    def test_zero_size_touches_nothing(self):
        assert address.lines_covering(100, 0) == []

    def test_negative_size_touches_nothing(self):
        assert address.lines_covering(100, -4) == []

    def test_single_byte(self):
        assert address.lines_covering(70, 1) == [64]

    def test_whole_line(self):
        assert address.lines_covering(64, 64) == [64]

    def test_straddles_boundary(self):
        assert address.lines_covering(60, 8) == [0, 64]

    def test_spans_many_lines(self):
        assert address.lines_covering(0, 200) == [0, 64, 128, 192]

    def test_exact_end_does_not_spill(self):
        assert address.lines_covering(0, 128) == [0, 64]
