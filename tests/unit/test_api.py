"""Unit tests for the SecureMemory facade."""

import pytest

from repro import SecureMemory
from tests.conftest import SMALL_CAPACITY


@pytest.fixture
def mem(config):
    return SecureMemory("ccnvm", config, SMALL_CAPACITY, seed=3)


class TestStoreLoad:
    def test_roundtrip_within_line(self, mem):
        mem.store(0x100, b"hello")
        assert mem.load(0x100, 5) == b"hello"

    def test_roundtrip_across_lines(self, mem):
        blob = bytes(range(200))
        mem.store(0x3F0, blob)
        assert mem.load(0x3F0, 200) == blob

    def test_unwritten_memory_reads_zero(self, mem):
        assert mem.load(0x5000, 16) == bytes(16)

    def test_overwrite(self, mem):
        mem.store(0, b"aaaa")
        mem.store(2, b"bb")
        assert mem.load(0, 4) == b"aabb"

    def test_empty_operations(self, mem):
        mem.store(0, b"")
        assert mem.load(0, 0) == b""

    def test_bounds_checked(self, mem):
        with pytest.raises(ValueError):
            mem.store(mem.capacity - 1, b"xy")
        with pytest.raises(ValueError):
            mem.load(-1, 4)

    def test_clock_advances(self, mem):
        before = mem.now
        mem.store(0, b"data")
        assert mem.now > before


class TestDurability:
    def test_persisted_data_survives_crash(self, mem):
        mem.store(0x1000, b"durable")
        mem.persist(0x1000, 7)
        mem.crash()
        assert mem.recover().success
        assert mem.load(0x1000, 7) == b"durable"

    def test_unpersisted_data_lost_on_crash(self, mem):
        mem.store(0x1000, b"volatile")
        mem.crash()
        mem.recover()
        assert mem.load(0x1000, 8) == bytes(8)

    def test_flush_makes_everything_durable(self, mem):
        mem.store(0x1000, b"one")
        mem.store(0x8000, b"two")
        mem.flush()
        mem.crash()
        assert mem.recover().success
        assert mem.load(0x1000, 3) == b"one"
        assert mem.load(0x8000, 3) == b"two"

    def test_persist_is_idempotent(self, mem):
        mem.store(0, b"x")
        mem.persist(0, 1)
        writes = mem.scheme.nvm.total_writes
        mem.persist(0, 1)  # clean line: no further traffic
        assert mem.scheme.nvm.total_writes == writes


class TestSchemes:
    @pytest.mark.parametrize(
        "scheme", ["no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"]
    )
    def test_every_design_round_trips(self, scheme, config):
        mem = SecureMemory(scheme, config, SMALL_CAPACITY, seed=1)
        mem.store(0x2000, b"same API everywhere")
        assert mem.load(0x2000, 19) == b"same API everywhere"

    def test_stats_exposed(self, mem):
        mem.store(0, b"x")
        mem.flush()
        stats = mem.stats()
        assert any("nvm" in key for key in stats)
        assert mem.nvm_writes().get("data", 0) >= 1

    def test_attacker_is_bound_to_this_nvm(self, mem):
        assert mem.attacker().nvm is mem.scheme.nvm

    def test_ciphertext_only_in_nvm(self, mem):
        secret = b"top secret value!"
        mem.store(0x4000, secret)
        mem.persist(0x4000, len(secret))
        observed = mem.attacker().observe(0x4000)
        assert secret not in observed
