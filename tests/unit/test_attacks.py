"""Unit tests for the attack-injection primitives."""

import pytest

from repro.common.constants import HMAC_SIZE
from repro.core.attacks import Attacker
from repro.crypto.prf import SecretKey
from repro.mem.nvm import NVMDevice
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout, MerkleNodeId


@pytest.fixture
def attacker():
    layout = MemoryLayout(1 << 20)
    genesis = GenesisImage(
        layout, SecretKey.from_seed("a-enc"), SecretKey.from_seed("a-mac")
    )
    nvm = NVMDevice(layout, initializer=genesis.line)
    return Attacker(nvm)


class TestObservation:
    def test_observe_returns_stored_bytes(self, attacker):
        attacker.nvm.poke(64, bytes([7]) * 64)
        assert attacker.observe(64) == bytes([7]) * 64

    def test_observe_line_aligns(self, attacker):
        attacker.nvm.poke(64, bytes([7]) * 64)
        assert attacker.observe(100) == bytes([7]) * 64

    def test_observation_leaves_no_traffic(self, attacker):
        attacker.observe(0)
        assert attacker.nvm.total_reads == 0


class TestSpoofing:
    def test_spoof_data_flips_one_byte(self, attacker):
        before = attacker.nvm.peek(0)
        attacker.spoof_data(0, xor_mask=0x80)
        after = attacker.nvm.peek(0)
        assert after[0] == before[0] ^ 0x80
        assert after[1:] == before[1:]

    def test_spoof_data_hmac_targets_the_block_slot(self, attacker):
        layout = attacker.layout
        line_addr, offset = layout.data_hmac_location(3 * 64)
        before = attacker.nvm.peek(line_addr)
        attacker.spoof_data_hmac(3 * 64)
        after = attacker.nvm.peek(line_addr)
        assert after[offset] == before[offset] ^ 0x01
        # Neighbouring HMAC slots untouched.
        assert after[:offset] == before[:offset]
        assert after[offset + 1:] == before[offset + 1:]

    def test_spoof_counter_line(self, attacker):
        addr = attacker.layout.counter_line_addr(4096)
        before = attacker.nvm.peek(addr)
        attacker.spoof_counter_line(4096)
        assert attacker.nvm.peek(addr) != before

    def test_spoof_tree_node(self, attacker):
        node = MerkleNodeId(1, 0)
        addr = attacker.layout.merkle_node_addr(node)
        before = attacker.nvm.peek(addr)
        attacker.spoof_tree_node(node)
        assert attacker.nvm.peek(addr) != before


class TestSplicing:
    def test_splice_moves_data_and_hmac(self, attacker):
        attacker.nvm.poke(0, bytes([1]) * 64)
        attacker.nvm.poke(4096, bytes([2]) * 64)
        src_line, src_off = attacker.layout.data_hmac_location(0)
        attacker.nvm.poke(
            src_line, bytes([0xAA]) * 64
        )
        attacker.splice_data(0, 4096)
        assert attacker.nvm.peek(4096) == bytes([1]) * 64
        dst_line, dst_off = attacker.layout.data_hmac_location(4096)
        assert (
            attacker.nvm.peek(dst_line)[dst_off:dst_off + HMAC_SIZE]
            == bytes([0xAA]) * HMAC_SIZE
        )

    def test_splice_leaves_source_alone(self, attacker):
        attacker.nvm.poke(0, bytes([1]) * 64)
        attacker.splice_data(0, 4096)
        assert attacker.nvm.peek(0) == bytes([1]) * 64


class TestReplay:
    def test_replay_data_restores_old_pair(self, attacker):
        attacker.nvm.poke(64, bytes([1]) * 64)
        snap = attacker.record()
        attacker.nvm.poke(64, bytes([2]) * 64)
        attacker.replay_data(snap, 64)
        assert attacker.nvm.peek(64) == bytes([1]) * 64

    def test_replay_data_restores_only_that_blocks_hmac(self, attacker):
        layout = attacker.layout
        line_addr, offset = layout.data_hmac_location(64)
        attacker.nvm.poke(line_addr, bytes(range(64)))
        snap = attacker.record()
        attacker.nvm.poke(line_addr, bytes([0xFF]) * 64)
        attacker.replay_data(snap, 64)
        after = attacker.nvm.peek(line_addr)
        assert after[offset:offset + HMAC_SIZE] == bytes(range(64))[offset:offset + HMAC_SIZE]
        # The other three slots keep the newer value.
        other = [i for i in range(64) if not offset <= i < offset + HMAC_SIZE]
        assert all(after[i] == 0xFF for i in other)

    def test_replay_counter_line(self, attacker):
        addr = attacker.layout.counter_line_addr(0)
        snap = attacker.record()
        attacker.nvm.poke(addr, bytes([5]) * 64)
        attacker.replay_counter_line(snap, 0)
        assert attacker.nvm.peek(addr) == snap.line(attacker.nvm, addr)

    def test_replay_path_rolls_back_everything(self, attacker):
        layout = attacker.layout
        snap = attacker.record()
        # Mutate data, hmac, counter and the whole internal path.
        attacker.nvm.poke(0, bytes([9]) * 64)
        attacker.nvm.poke(layout.counter_line_addr(0), bytes([9]) * 64)
        for node in layout.ancestors_of_leaf(0):
            if node.level < layout.root_level:
                attacker.nvm.poke(layout.merkle_node_addr(node), bytes([9]) * 64)
        attacker.replay_path(snap, 0)
        assert attacker.nvm.peek(0) == snap.line(attacker.nvm, 0)
        assert attacker.nvm.peek(layout.counter_line_addr(0)) == snap.line(
            attacker.nvm, layout.counter_line_addr(0)
        )
        for node in layout.ancestors_of_leaf(0):
            if node.level < layout.root_level:
                addr = layout.merkle_node_addr(node)
                assert attacker.nvm.peek(addr) == snap.line(attacker.nvm, addr)

    def test_snapshot_of_untouched_line_is_genesis(self, attacker):
        snap = attacker.record()
        genesis_value = attacker.nvm.peek(128)
        attacker.nvm.poke(128, bytes([1]) * 64)
        attacker.replay_data(snap, 128)
        assert attacker.nvm.peek(128) == genesis_value
