"""Unit tests for the set-associative LRU cache."""

import pytest

from repro.common.config import CacheConfig
from repro.mem.cache import Cache


def tiny_cache(ways=2, sets=2):
    """A cache small enough to force evictions quickly."""
    return Cache(
        CacheConfig(
            size_bytes=ways * sets * 64, associativity=ways, hit_latency=1, name="t"
        )
    )


def addr_for(cache, set_index, tag):
    """An address mapping to *set_index* with a distinguishing tag."""
    return (tag * cache.config.num_sets + set_index) * 64


class TestLookup:
    def test_miss_on_empty(self):
        c = tiny_cache()
        assert c.access(0) is None
        assert c.stats.counter("misses").value == 1

    def test_hit_after_fill(self):
        c = tiny_cache()
        c.fill(0, b"\x01" * 64)
        line = c.access(0)
        assert line is not None
        assert line.data == b"\x01" * 64
        assert c.stats.counter("hits").value == 1

    def test_probe_does_not_count(self):
        c = tiny_cache()
        c.fill(0)
        c.probe(0)
        c.probe(64)
        assert c.stats.counter("hits").value == 0
        assert c.stats.counter("misses").value == 0

    def test_rejects_unaligned(self):
        with pytest.raises(ValueError):
            tiny_cache().access(3)

    def test_hit_rate(self):
        c = tiny_cache()
        c.fill(0)
        c.access(0)
        c.access(64)
        assert c.hit_rate == 0.5


class TestReplacement:
    def test_eviction_on_full_set(self):
        c = tiny_cache(ways=2, sets=2)
        a0, a1, a2 = (addr_for(c, 0, t) for t in range(3))
        c.fill(a0)
        c.fill(a1)
        victim = c.fill(a2)
        assert victim is not None
        assert victim.addr == a0  # LRU order
        assert c.probe(a0) is None
        assert c.probe(a1) is not None

    def test_access_refreshes_lru(self):
        c = tiny_cache(ways=2, sets=2)
        a0, a1, a2 = (addr_for(c, 0, t) for t in range(3))
        c.fill(a0)
        c.fill(a1)
        c.access(a0)  # a1 becomes LRU
        victim = c.fill(a2)
        assert victim.addr == a1

    def test_refill_resident_does_not_evict(self):
        c = tiny_cache(ways=2, sets=2)
        a0, a1 = (addr_for(c, 0, t) for t in range(2))
        c.fill(a0)
        c.fill(a1)
        assert c.fill(a0, b"\x05" * 64) is None
        assert c.probe(a0).data == b"\x05" * 64

    def test_different_sets_do_not_interfere(self):
        c = tiny_cache(ways=2, sets=2)
        for tag in range(4):
            assert c.fill(addr_for(c, 0, tag) if tag < 2 else addr_for(c, 1, tag)) is None

    def test_dirty_eviction_counted(self):
        c = tiny_cache(ways=1, sets=1)
        c.fill(0, dirty=True)
        victim = c.fill(64)
        assert victim.dirty
        assert c.stats.counter("dirty_evictions").value == 1
        assert c.stats.counter("evictions").value == 1


class TestDirtyState:
    def test_fill_dirty_sticks(self):
        c = tiny_cache()
        c.fill(0, dirty=True)
        c.fill(0, dirty=False)  # refill must not lose the dirty bit
        assert c.probe(0).dirty

    def test_clean_clears_dirty_and_update_count(self):
        c = tiny_cache()
        c.fill(0, dirty=True)
        c.probe(0).update_count = 5
        c.clean(0)
        line = c.probe(0)
        assert not line.dirty
        assert line.update_count == 0

    def test_clean_missing_line_is_noop(self):
        tiny_cache().clean(0)  # must not raise

    def test_dirty_lines_iteration(self):
        c = tiny_cache(ways=4, sets=1)
        c.fill(0, dirty=True)
        c.fill(64)
        c.fill(128, dirty=True)
        assert sorted(l.addr for l in c.dirty_lines()) == [0, 128]


class TestInvalidation:
    def test_invalidate_returns_line(self):
        c = tiny_cache()
        c.fill(0, b"\x07" * 64, dirty=True)
        line = c.invalidate(0)
        assert line.dirty
        assert c.probe(0) is None

    def test_invalidate_missing_returns_none(self):
        assert tiny_cache().invalidate(0) is None

    def test_drop_all_models_power_loss(self):
        c = tiny_cache(ways=4, sets=2)
        for i in range(6):
            c.fill(i * 64, dirty=True)
        c.drop_all()
        assert c.occupancy == 0
        assert list(c.dirty_lines()) == []


class TestOccupancy:
    def test_occupancy_tracks_fills(self):
        c = tiny_cache(ways=4, sets=2)
        assert c.occupancy == 0
        c.fill(0)
        c.fill(64)
        assert c.occupancy == 2

    def test_occupancy_bounded_by_capacity(self):
        c = tiny_cache(ways=2, sets=2)
        for i in range(20):
            c.fill(i * 64)
        assert c.occupancy <= 4
