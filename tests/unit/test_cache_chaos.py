"""Cache failure semantics under chaos: puts fail cleanly (no partial
entry ever visible), orphaned temp files are swept, and a supervised
sweep tolerates put failures because the journal still holds the result.
"""

import errno

import pytest

from repro.chaos.inject import install, reset
from repro.chaos.plan import CHAOS_PLAN_ENV, ChaosPlan
from repro.runs.cache import ResultCache
from repro.runs.journal import RunJournal
from repro.runs.orchestrate import run_specs, sweep_journal_path
from repro.runs.spec import simulation_spec

FINGERPRINT = "test-fingerprint"


@pytest.fixture(autouse=True)
def clean_injector(monkeypatch):
    monkeypatch.delenv(CHAOS_PLAN_ENV, raising=False)
    reset()
    yield
    reset()


def make_cache(tmp_path):
    return ResultCache(tmp_path / "cache", fingerprint=FINGERPRINT)


def spec_for(seed=1):
    return simulation_spec("ccnvm", "lbm", 40, seed)


class TestPutFailures:
    @pytest.mark.parametrize(
        "site,code",
        [("cache.put_eio", errno.EIO), ("cache.put_enospc", errno.ENOSPC)],
    )
    def test_put_raises_cleanly_with_no_partial_entry(
        self, tmp_path, site, code
    ):
        cache = make_cache(tmp_path)
        spec = spec_for()
        install(ChaosPlan(0, {site: {"hits": [1]}}))
        with pytest.raises(OSError) as failure:
            cache.put(spec, {"value": 1})
        assert failure.value.errno == code
        # Nothing visible, nothing half-written.
        assert not cache.contains(spec)
        assert cache.get(spec) is None
        gen_dir = cache.results_dir / FINGERPRINT
        assert list(gen_dir.glob("*.json")) == []
        assert list(gen_dir.glob("*.tmp")) == []
        # The site fires once; the retried put lands normally.
        assert cache.put(spec, {"value": 1}).is_file()
        assert cache.get(spec) == {"value": 1}

    def test_put_torn_orphans_tmp_and_gc_sweeps_it(self, tmp_path):
        cache = make_cache(tmp_path)
        spec = spec_for()
        install(ChaosPlan(0, {"cache.put_torn": {"hits": [1]}}))
        with pytest.raises(OSError) as failure:
            cache.put(spec, {"value": 1})
        assert failure.value.errno == errno.EIO
        gen_dir = cache.results_dir / FINGERPRINT
        orphans = list(gen_dir.glob("*.tmp"))
        # The writer died mid-write: a partial temp file exists but the
        # entry itself was never made visible.
        assert len(orphans) == 1
        assert not cache.contains(spec)
        assert cache.get(spec) is None
        # gc always sweeps writer orphans, whatever its retention knobs.
        orphan_bytes = orphans[0].stat().st_size
        swept = cache.gc(max_generations=5)
        assert swept["reclaimed_bytes"] >= orphan_bytes > 0
        assert list(gen_dir.glob("*.tmp")) == []
        # A later clean put is unaffected.
        cache.put(spec, {"value": 2})
        assert cache.get(spec) == {"value": 2}

    def test_get_missing_forces_a_miss_without_touching_disk(self, tmp_path):
        cache = make_cache(tmp_path)
        spec = spec_for()
        cache.put(spec, {"value": 7})
        install(ChaosPlan(0, {"cache.get_missing": {"hits": [1]}}))
        assert cache.get(spec) is None  # forced miss
        assert cache.contains(spec)  # the entry is still on disk
        assert cache.get(spec) == {"value": 7}  # next read is honest
        assert cache.misses == 1 and cache.hits == 1


class TestSweepTolerance:
    def test_failed_puts_are_counted_not_fatal(self, tmp_path):
        # Every put attempt fails (put_tolerant retries three times per
        # record); the sweep still completes and the journal holds the
        # results, so a rerun resumes from it.
        cache = make_cache(tmp_path)
        specs = [spec_for(1)]
        install(
            ChaosPlan(0, {"cache.put_eio": {"hits": [1, 2, 3]}})
        )
        journal_path = sweep_journal_path(cache, "chaos-test", specs)
        with RunJournal(journal_path, FINGERPRINT) as journal:
            report = run_specs(specs, jobs=1, cache=cache, journal=journal)
        assert report.failed == 0
        assert report.executed == 1
        assert report.cache_put_errors == 1
        assert not cache.contains(specs[0])

        reset()  # chaos off for the rerun
        with RunJournal(journal_path, FINGERPRINT) as journal:
            rerun = run_specs(specs, jobs=1, cache=cache, journal=journal)
        assert rerun.executed == 0
        assert rerun.journal_hits == 1
        assert rerun.payload(specs[0]) == report.payload(specs[0])

    def test_failed_journal_appends_leave_the_cache_copy(self, tmp_path):
        cache = make_cache(tmp_path)
        specs = [spec_for(1)]
        install(ChaosPlan(0, {"journal.fsync_fail": {"hits": [2]}}))
        journal_path = sweep_journal_path(cache, "chaos-test", specs)
        with RunJournal(journal_path, FINGERPRINT) as journal:
            # Visit 1 is the header append of the fresh journal; visit 2
            # is this sweep's only record.
            report = run_specs(specs, jobs=1, cache=cache, journal=journal)
        assert report.failed == 0
        assert report.journal_errors == 1
        assert cache.contains(specs[0])

        reset()
        with RunJournal(journal_path, FINGERPRINT) as journal:
            rerun = run_specs(specs, jobs=1, cache=cache, journal=journal)
        assert rerun.cache_hits == 1
        assert rerun.payload(specs[0]) == report.payload(specs[0])
