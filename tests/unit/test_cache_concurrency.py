"""Multiprocess stress test for the cache's atomic-rename discipline.

Four writer processes hammer the *same* spec hash while the parent reads
it back continuously.  Because every writer goes through mkstemp +
os.replace, a reader must never observe a torn document: every read is
either a miss (before the first write lands) or a complete, valid
envelope from one of the writers.
"""

import json
import subprocess
import sys

from repro.runs.cache import ResultCache
from repro.runs.spec import simulation_spec

SPEC = simulation_spec("ccnvm", "lbm", 1000, 1)
FINGERPRINT = "f" * 16
ITERATIONS = 100
WRITERS = 4

WRITER_SCRIPT = """
import sys
from repro.runs.cache import ResultCache
from repro.runs.spec import simulation_spec

root, worker, iterations = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
cache = ResultCache(root, fingerprint="{fingerprint}")
spec = simulation_spec("ccnvm", "lbm", 1000, 1)
for i in range(iterations):
    cache.put(spec, {{"worker": worker, "iteration": i}})
    seen = cache.get(spec)
    assert seen is not None, "reader saw a torn/invalid document"
    assert set(seen) == {{"worker", "iteration"}}, seen
"""


def test_concurrent_writers_same_key_never_tear(tmp_path):
    root = tmp_path / "cache"
    script = WRITER_SCRIPT.format(fingerprint=FINGERPRINT)
    writers = [
        subprocess.Popen(
            [sys.executable, "-c", script, str(root), str(n), str(ITERATIONS)],
            stderr=subprocess.PIPE,
        )
        for n in range(WRITERS)
    ]

    # The parent doubles as a dedicated reader while the writers race.
    cache = ResultCache(root, fingerprint=FINGERPRINT)
    observed = 0
    while any(w.poll() is None for w in writers):
        payload = cache.get(SPEC)
        if payload is not None:
            assert set(payload) == {"worker", "iteration"}, payload
            assert 0 <= payload["worker"] < WRITERS
            observed += 1

    for writer in writers:
        stderr = writer.stderr.read().decode()
        writer.stderr.close()
        assert writer.wait() == 0, stderr
    assert observed > 0, "reader never overlapped the writers"

    # The final state is one complete document from some writer — and the
    # raw file parses, so no rename ever exposed a partial write.
    path = cache.path_for(SPEC)
    envelope = json.loads(path.read_text())
    assert envelope["payload"]["iteration"] == ITERATIONS - 1
    # No temp-file residue: every mkstemp either renamed or was unlinked.
    assert not list(path.parent.glob("*.tmp"))
