"""Unit tests for chaos plans and the process-global injector."""

import json

import pytest

from repro.chaos.inject import (
    ChaosInjector,
    active,
    chaos_fire,
    deactivate,
    install,
    reset,
)
from repro.chaos.plan import ALL_SITE_NAMES, CHAOS_PLAN_ENV, ChaosError, ChaosPlan


@pytest.fixture(autouse=True)
def clean_injector(monkeypatch):
    """Every test starts and ends with chaos disarmed and the env clean."""
    monkeypatch.delenv(CHAOS_PLAN_ENV, raising=False)
    reset()
    yield
    reset()


class TestChaosPlan:
    def test_generate_is_deterministic(self):
        a = ChaosPlan.generate(7, ALL_SITE_NAMES, fires=2)
        b = ChaosPlan.generate(7, ALL_SITE_NAMES, fires=2)
        assert a.to_json() == b.to_json()
        assert set(a.schedule) == set(ALL_SITE_NAMES)
        for entry in a.schedule.values():
            assert len(entry["hits"]) == 2
            assert all(1 <= h <= 3 for h in entry["hits"])

    def test_different_seeds_differ(self):
        a = ChaosPlan.generate(1, ALL_SITE_NAMES)
        b = ChaosPlan.generate(2, ALL_SITE_NAMES)
        assert a.to_json() != b.to_json()

    def test_json_round_trip_is_canonical(self):
        plan = ChaosPlan(
            5,
            {
                "serve.exec_error": {"hits": [2, 1, 2]},
                "pool.worker_hang": {
                    "hits": [1],
                    "params": {"hang_seconds": 9.0},
                },
            },
        )
        # Hits are deduplicated and sorted; schedule keys are sorted.
        assert plan.schedule["serve.exec_error"]["hits"] == [1, 2]
        text = plan.to_json()
        assert json.loads(text) == json.loads(ChaosPlan.from_json(text).to_json())
        assert text == ChaosPlan.from_json(text).to_json()

    def test_from_env(self):
        plan = ChaosPlan.generate(3, ["cache.put_eio"])
        env = {CHAOS_PLAN_ENV: plan.to_json()}
        loaded = ChaosPlan.from_env(env)
        assert loaded is not None and loaded.to_json() == plan.to_json()
        assert ChaosPlan.from_env({}) is None
        assert ChaosPlan.from_env({CHAOS_PLAN_ENV: ""}) is None

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos site"):
            ChaosPlan(0, {"pool.nonsense": {"hits": [1]}})

    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError, match="never fires"):
            ChaosPlan(0, {})

    def test_zero_based_hits_rejected(self):
        with pytest.raises(ValueError, match="1-based"):
            ChaosPlan(0, {"cache.put_eio": {"hits": [0]}})
        with pytest.raises(ValueError, match="1-based"):
            ChaosPlan(0, {"cache.put_eio": {"hits": []}})

    def test_describe_names_every_scheduled_site(self):
        plan = ChaosPlan.generate(9, ["serve.conn_drop", "cache.put_torn"])
        text = plan.describe()
        assert "seed 9" in text
        assert "serve.conn_drop@" in text and "cache.put_torn@" in text

    def test_chaos_error_carries_site(self):
        err = ChaosError("journal.fsync_fail")
        assert err.site == "journal.fsync_fail"
        assert "journal.fsync_fail" in str(err)


class TestInjector:
    def test_fires_exactly_at_scheduled_visits(self):
        plan = ChaosPlan(
            0,
            {
                "cache.put_eio": {"hits": [2, 4], "params": {"tag": "x"}},
            },
        )
        injector = ChaosInjector(plan)
        results = [injector.fire("cache.put_eio") for _ in range(5)]
        assert results == [None, {"tag": "x"}, None, {"tag": "x"}, None]
        assert injector.hits["cache.put_eio"] == 5
        assert [f["hit"] for f in injector.fires] == [2, 4]
        assert all(f["site"] == "cache.put_eio" for f in injector.fires)

    def test_unscheduled_sites_are_counted_but_never_fire(self):
        plan = ChaosPlan(0, {"cache.put_eio": {"hits": [1]}})
        injector = ChaosInjector(plan)
        assert injector.fire("journal.append_torn") is None
        assert injector.hits["journal.append_torn"] == 1
        assert injector.fires == []

    def test_install_and_deactivate(self):
        plan = ChaosPlan(0, {"serve.exec_error": {"hits": [1]}})
        injector = install(plan)
        assert active() is injector
        assert chaos_fire("serve.exec_error") == {}
        assert chaos_fire("serve.exec_error") is None
        deactivate()
        assert active() is None
        assert chaos_fire("serve.exec_error") is None

    def test_env_armed_lazily_and_reset_rereads(self, monkeypatch):
        # First use with no env: off, and the decision is cached.
        assert chaos_fire("cache.put_eio") is None
        monkeypatch.setenv(
            CHAOS_PLAN_ENV,
            ChaosPlan(1, {"cache.put_eio": {"hits": [1]}}).to_json(),
        )
        assert chaos_fire("cache.put_eio") is None  # still cached-off
        reset()
        assert chaos_fire("cache.put_eio") == {}  # re-read armed the plan
        injector = active()
        assert injector is not None
        assert injector.plan.seed == 1
