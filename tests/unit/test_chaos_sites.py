"""Drift test: chaos-site strings in the source tree must equal the
chaos/plan.py registry, in both directions.

Same discipline (and same deliberate independence from ``repro.lint``)
as the fault-site drift test: the set of ``chaos_fire("...")`` call
sites in the shipped package is the ground truth the registry must
match exactly — a hook without a registry entry can never be scheduled,
a registry entry without a hook can never fire.
"""

import ast
from pathlib import Path

import repro
from repro.chaos.plan import ALL_SITE_NAMES, SITES, site, sites_for_component

SRC = Path(repro.__file__).resolve().parent
CHAOS_CALLS = ("chaos_fire",)


def called_sites() -> set[str]:
    sites = set()
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(
                func, "id", None
            )
            if name in CHAOS_CALLS and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    sites.add(arg.value)
    return sites


def test_every_called_site_is_registered():
    unregistered = called_sites() - set(ALL_SITE_NAMES)
    assert not unregistered, (
        f"chaos sites called in code but missing from chaos/plan.py: "
        f"{sorted(unregistered)}"
    )


def test_every_registered_site_is_called():
    unused = set(ALL_SITE_NAMES) - called_sites()
    assert not unused, (
        f"chaos sites registered in chaos/plan.py but never called: "
        f"{sorted(unused)}"
    )


def test_site_names_are_component_dot_step():
    for name in ALL_SITE_NAMES:
        component, _, step = name.partition(".")
        assert component and step, f"malformed site name {name!r}"
        assert site(name).component == component


def test_components_cover_the_serving_stack():
    components = {s.component for s in SITES}
    assert components == {"pool", "cache", "journal", "serve"}
    for component in sorted(components):
        assert sites_for_component(component), component


def test_registry_covers_at_least_eight_sites():
    # The acceptance bar for the chaos campaign: >= 8 sites across the
    # pool/cache/journal/serve stack.
    assert len(ALL_SITE_NAMES) >= 8
