"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_simulate_validates_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "dhrystone"])

    def test_simulate_validates_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "gcc", "--scheme", "magic"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "gcc"])
        assert args.scheme == "ccnvm"
        assert args.length == 4000

    def test_faults_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults"])

    def test_faults_run_validates_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "run", "--schemes", "magic"])

    def test_faults_run_defaults(self):
        args = build_parser().parse_args(["faults", "run", "--smoke"])
        assert args.smoke and args.schemes is None and args.export is None

    def test_faults_sites_flags(self):
        args = build_parser().parse_args(
            ["faults", "sites", "--json", "--scheme", "osiris_plus"]
        )
        assert args.json and args.scheme == "osiris_plus"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["faults", "sites", "--scheme", "magic"])

    def test_crash_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crash"])

    def test_crash_explore_defaults(self):
        args = build_parser().parse_args(["crash", "explore"])
        assert args.schemes == ["ccnvm"]
        assert args.steps is None and args.shards is None
        assert args.window == 4 and args.budget == 16 and args.seed == 7
        assert not args.torn_batches and args.nested_depth == 2
        assert args.jobs == 1 and not args.no_cache

    def test_crash_explore_validates_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["crash", "explore", "--schemes", "magic"])

    def test_crash_replay_and_minimize_take_a_file(self):
        args = build_parser().parse_args(["crash", "replay", "r.json"])
        assert args.file == "r.json"
        args = build_parser().parse_args(
            ["crash", "minimize", "r.json", "--out", "m.json"]
        )
        assert args.file == "r.json" and args.out == "m.json"

    def test_obs_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs"])

    def test_obs_trace_defaults(self):
        args = build_parser().parse_args(["obs", "trace", "gcc"])
        assert args.scheme == "ccnvm" and args.length == 4000
        assert args.capacity is None and args.out is None

    def test_obs_timeline_defaults(self):
        args = build_parser().parse_args(["obs", "timeline", "gcc"])
        assert len(args.schemes) == 6
        assert args.jobs == 1 and not args.no_cache and args.json is None

    def test_obs_timeline_validates_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["obs", "timeline", "gcc",
                                       "--schemes", "magic"])

    def test_obs_sample_defaults(self):
        args = build_parser().parse_args(["obs", "sample", "gcc"])
        assert args.every == 1000 and not args.json and args.out is None

    def test_simulate_report_flags(self):
        args = build_parser().parse_args(
            ["simulate", "gcc", "--report", "--stats-json", "s.json"]
        )
        assert args.report and args.stats_json == "s.json"

    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.root is None and args.baseline is None
        assert not args.json and not args.strict and not args.update_baseline

    def test_lint_flags(self):
        args = build_parser().parse_args(
            ["lint", "--strict", "--json", "--baseline", "b.txt"]
        )
        assert args.strict and args.json and args.baseline == "b.txt"


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "16 GB PCM" in out
        assert "M=64, N=16" in out
        assert "cc-NVM" in out

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "success=True" in out
        assert "located=['0x1000']" in out

    def test_simulate_runs(self, capsys):
        assert main(["simulate", "namd", "--length", "300"]) == 0
        out = capsys.readouterr().out
        assert "cc-NVM on namd" in out
        assert "IPC" in out

    def test_simulate_report_and_stats_json(self, capsys, tmp_path):
        import json

        stats_path = tmp_path / "stats.json"
        assert main(["simulate", "namd", "--length", "300", "--report",
                     "--stats-json", str(stats_path)]) == 0
        out = capsys.readouterr().out
        assert "statistics for ccnvm" in out or "ccnvm" in out
        assert "p50=" in out  # distributions render percentiles
        doc = json.loads(stats_path.read_text())
        assert any(key.startswith("ccnvm.controller.") for key in doc)
        # distributions export the summary-dict shape
        assert any(isinstance(v, dict) and "n" in v for v in doc.values())

    def test_obs_trace_writes_valid_trace(self, capsys, tmp_path):
        import json

        from repro.obs.export import validate_trace

        out_path = tmp_path / "trace.json"
        assert main(["obs", "trace", "namd", "--length", "300",
                     "--out", str(out_path)]) == 0
        assert "valid trace" in capsys.readouterr().out
        trace = json.loads(out_path.read_text())
        assert validate_trace(trace) == []
        names = {e["name"] for e in trace["traceEvents"]}
        assert "epoch.drain" in names and "nvm.write" in names

    def test_obs_timeline_runs_and_writes_artifact(self, capsys, monkeypatch,
                                                   tmp_path):
        import json

        monkeypatch.chdir(tmp_path)  # the cache lands here
        assert main(["obs", "timeline", "namd", "--length", "300", "--quiet",
                     "--schemes", "sc", "ccnvm",
                     "--json", "BENCH_obs_headline.json"]) == 0
        out = capsys.readouterr().out
        assert "[coverage]" in out and "100.0%" in out
        doc = json.loads((tmp_path / "BENCH_obs_headline.json").read_text())
        assert doc["bench"] == "obs_headline"
        assert doc["schemes"] == ["sc", "ccnvm"]
        for timeline in doc["timelines"]:
            assert timeline["cycle_coverage"] >= 0.95
            assert timeline["write_coverage"] >= 0.95

    def test_obs_timeline_second_run_hits_cache(self, capsys, monkeypatch,
                                                tmp_path):
        monkeypatch.chdir(tmp_path)
        argv = ["obs", "timeline", "namd", "--length", "300", "--quiet",
                "--schemes", "ccnvm"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "1 from cache" in capsys.readouterr().out

    def test_obs_sample_emits_csv(self, capsys, tmp_path):
        out_path = tmp_path / "series.csv"
        assert main(["obs", "sample", "namd", "--length", "300",
                     "--every", "500", "--out", str(out_path)]) == 0
        header, first = out_path.read_text().splitlines()[:2]
        assert header.startswith("cycle,")
        assert first.split(",")[0].isdigit()

    def test_faults_sites_lists_catalogue(self, capsys):
        assert main(["faults", "sites"]) == 0
        out = capsys.readouterr().out
        assert "writeback.after_data" in out
        assert "recovery.before_root_set" in out
        assert "reached by: ccnvm_no_ds, ccnvm" in out

    def test_faults_sites_scheme_filter(self, capsys):
        assert main(["faults", "sites", "--scheme", "no_cc"]) == 0
        out = capsys.readouterr().out
        assert "reachable by no_cc" in out
        assert "writeback.before_data" in out
        assert "daq.after_reserve" not in out

    def test_faults_sites_json(self, capsys):
        import json

        assert main(["faults", "sites", "--json", "--scheme", "osiris_plus"]) == 0
        catalogue = json.loads(capsys.readouterr().out)
        names = [s["name"] for s in catalogue]
        assert "writeback.after_stoploss" in names
        assert "wpq.mid_batch" not in names
        assert all(
            set(s) == {"name", "component", "description", "schemes"}
            for s in catalogue
        )

    def test_crash_replay_fixture(self, capsys):
        fixture = __import__("pathlib").Path(
            __file__
        ).parent.parent / "fixtures" / "crash_reproducer_torn_batch.json"
        assert main(["crash", "replay", str(fixture)]) == 0
        out = capsys.readouterr().out
        assert "failure reproduced" in out
        assert "outcome FAILED" in out

    def test_crash_explore_smoke(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)  # the cache lands here
        assert main([
            "crash", "explore", "--schemes", "ccnvm",
            "--steps", "24", "--quiet",
            "--export", "crash.json", "--reproducers", "repros",
        ]) == 0
        out = capsys.readouterr().out
        assert "0 violation(s)" in out and "nested ok" in out
        import json

        summary = json.loads((tmp_path / "crash.json").read_text())
        assert summary["total_violations"] == 0
        assert "ccnvm" in summary["schemes"]
        # No violations -> the reproducer directory exists but is empty.
        assert list((tmp_path / "repros").iterdir()) == []

    def test_faults_run_restricted(self, capsys, tmp_path):
        assert main([
            "faults", "run", "--schemes", "ccnvm",
            "--sites", "wpq.before_end", "--steps", "48",
            "--export", str(tmp_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out
        assert (tmp_path / "fault_campaign.csv").exists()
        assert (tmp_path / "fault_campaign.json").exists()

    def test_lint_runs_clean_on_repo(self, capsys, monkeypatch):
        import repro

        repo_root = __import__("pathlib").Path(
            repro.__file__
        ).resolve().parents[2]
        monkeypatch.chdir(repo_root)
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "repro lint:" in out
        assert "0 finding(s)" in out

    def test_lint_json_emits_report(self, capsys, monkeypatch, tmp_path):
        import json

        monkeypatch.chdir(tmp_path)  # no baseline here: finding surfaces
        assert main(["lint", "--json"]) in (0, 1)
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) >= {"counts", "findings", "rules", "root",
                            "schema_version"}
        assert set(doc["rules"]) == {
            "P0", "P1", "P2", "P3", "P4", "P5", "P6", "P7",
            "D0", "D1", "D2", "B0",
        }

    def test_lint_update_baseline_writes_file(self, capsys, monkeypatch,
                                              tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["lint", "--update-baseline"]) == 0
        baseline = tmp_path / "lint-baseline.txt"
        assert baseline.exists()
        # the rewritten baseline makes the next strict run clean
        capsys.readouterr()
        assert main(["lint", "--strict"]) == 0

    @pytest.mark.slow
    def test_evaluate_runs_small(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)  # the cache/journal land here
        assert main(["evaluate", "--length", "300", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert "Figure 5(b)" in out
        assert "average" in out
        assert "orchestration: 40 specs: 40 executed" in out

    @pytest.mark.slow
    def test_evaluate_second_run_is_served_from_cache(self, capsys,
                                                      monkeypatch, tmp_path):
        import json

        monkeypatch.chdir(tmp_path)
        assert main(["evaluate", "--length", "300", "--quiet",
                     "--json", "BENCH_fig5.json"]) == 0
        capsys.readouterr()
        assert main(["evaluate", "--length", "300", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "0 executed, 40 from cache" in out
        artifact = json.loads((tmp_path / "BENCH_fig5.json").read_text())
        assert artifact["benchmark"] == "fig5"
        assert len(artifact["workloads"]) == 8
        capsys.readouterr()
        assert main(["runs", "status", "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["stats"]["hits"] >= 40

    @pytest.mark.slow
    def test_evaluate_no_cache_reexecutes(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["evaluate", "--length", "300", "--quiet", "--no-cache"]) == 0
        capsys.readouterr()
        assert main(["evaluate", "--length", "300", "--quiet", "--no-cache"]) == 0
        assert "40 executed, 0 from cache" in capsys.readouterr().out

    def test_runs_status_on_empty_cache(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["runs", "status"]) == 0
        assert "no cached results" in capsys.readouterr().out

    def test_runs_gc_reports_scope(self, capsys, monkeypatch, tmp_path):
        monkeypatch.chdir(tmp_path)
        assert main(["runs", "gc", "--all"]) == 0
        assert "all generations" in capsys.readouterr().out

    def test_run_option_defaults(self):
        args = build_parser().parse_args(["evaluate"])
        assert args.jobs == 1 and not args.no_cache
        assert args.timeout is None and args.json is None
        args = build_parser().parse_args(
            ["faults", "run", "--jobs", "4", "--no-cache"]
        )
        assert args.jobs == 4 and args.no_cache
