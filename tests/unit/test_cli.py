"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_info_parses(self):
        args = build_parser().parse_args(["info"])
        assert args.command == "info"

    def test_simulate_validates_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "dhrystone"])

    def test_simulate_validates_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "gcc", "--scheme", "magic"])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate", "gcc"])
        assert args.scheme == "ccnvm"
        assert args.length == 4000


class TestCommands:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "16 GB PCM" in out
        assert "M=64, N=16" in out
        assert "cc-NVM" in out

    def test_demo_runs(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "success=True" in out
        assert "located=['0x1000']" in out

    def test_simulate_runs(self, capsys):
        assert main(["simulate", "namd", "--length", "300"]) == 0
        out = capsys.readouterr().out
        assert "cc-NVM on namd" in out
        assert "IPC" in out

    @pytest.mark.slow
    def test_evaluate_runs_small(self, capsys):
        assert main(["evaluate", "--length", "300"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5(a)" in out
        assert "Figure 5(b)" in out
        assert "average" in out
