"""Unit tests for configuration dataclasses and derived quantities."""

import pytest

from repro.common.config import (
    CacheConfig,
    CpuConfig,
    EpochConfig,
    NVMConfig,
    SystemConfig,
    paper_config,
)


class TestCpuConfig:
    def test_default_is_3ghz(self):
        assert CpuConfig().frequency_hz == 3e9

    def test_ns_to_cycles_at_3ghz(self):
        cpu = CpuConfig()
        assert cpu.ns_to_cycles(60) == 180
        assert cpu.ns_to_cycles(150) == 450
        assert cpu.ns_to_cycles(72) == 216

    def test_ns_to_cycles_rounds(self):
        cpu = CpuConfig(frequency_hz=1e9)
        assert cpu.ns_to_cycles(1.4) == 1
        assert cpu.ns_to_cycles(1.6) == 2


class TestCacheConfig:
    def test_paper_l1_geometry(self):
        l1 = paper_config().l1
        assert l1.size_bytes == 32 * 1024
        assert l1.associativity == 2
        assert l1.num_sets == 256
        assert l1.num_lines == 512

    def test_paper_l2_geometry(self):
        l2 = paper_config().l2
        assert l2.size_bytes == 256 * 1024
        assert l2.num_sets == 512
        assert l2.hit_latency == 20

    def test_paper_meta_cache_geometry(self):
        meta = paper_config().security.meta_cache
        assert meta.size_bytes == 128 * 1024
        assert meta.associativity == 8
        assert meta.hit_latency == 32

    def test_rejects_non_divisible_size(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=1000, associativity=3, hit_latency=1)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=3 * 64 * 8, associativity=8, hit_latency=1)


class TestNVMConfig:
    def test_paper_latencies(self):
        nvm = NVMConfig()
        assert nvm.read_latency_ns == 60.0
        assert nvm.write_latency_ns == 150.0

    def test_paper_capacity_is_16gb(self):
        assert NVMConfig().capacity_bytes == 16 << 30

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            NVMConfig(capacity_bytes=0)


class TestSystemConfig:
    def test_derived_cycles(self):
        cfg = paper_config()
        assert cfg.nvm_read_cycles == 180
        assert cfg.nvm_write_cycles == 450
        assert cfg.aes_cycles == 216

    def test_paper_epoch_defaults(self):
        epoch = paper_config().epoch
        assert epoch.dirty_queue_entries == 64
        assert epoch.update_limit == 16
        assert epoch.dirty_queue_lookup_cycles == 32

    def test_paper_controller_defaults(self):
        ctl = paper_config().controller
        assert ctl.read_queue_entries == 32
        assert ctl.write_queue_entries == 64
        assert ctl.wpq_entries == 64

    def test_dirty_queue_bounded_by_wpq(self):
        with pytest.raises(ValueError):
            SystemConfig(epoch=EpochConfig(dirty_queue_entries=128))

    def test_with_epoch_returns_modified_copy(self):
        cfg = paper_config()
        tweaked = cfg.with_epoch(update_limit=32)
        assert tweaked.epoch.update_limit == 32
        assert tweaked.epoch.dirty_queue_entries == 64
        assert cfg.epoch.update_limit == 16  # original untouched

    def test_with_nvm_returns_modified_copy(self):
        cfg = paper_config()
        tweaked = cfg.with_nvm(capacity_bytes=1 << 20)
        assert tweaked.nvm.capacity_bytes == 1 << 20
        assert cfg.nvm.capacity_bytes == 16 << 30

    def test_config_is_frozen(self):
        cfg = paper_config()
        with pytest.raises(AttributeError):
            cfg.nvm = NVMConfig()
