"""Unit tests for the memory-controller timing model."""

import pytest

from repro.common.config import SystemConfig, paper_config
from repro.mem.controller import MemoryController
from repro.mem.nvm import NVMDevice
from repro.metadata.layout import MemoryLayout


@pytest.fixture
def ctl():
    cfg = paper_config().with_nvm(capacity_bytes=1 << 20)
    nvm = NVMDevice(MemoryLayout(cfg.nvm.capacity_bytes))
    return MemoryController(cfg, nvm)


READ = 180  # 60 ns at 3 GHz
WRITE = 450  # 150 ns at 3 GHz
READ_IVL = READ // 8  # banked read service interval
WRITE_IVL = WRITE // 8  # banked write service interval


class TestReads:
    def test_idle_read_latency(self, ctl):
        assert ctl.read_completion(0) == READ

    def test_back_to_back_reads_pipeline_across_banks(self, ctl):
        # Full latency each, but issue slots only READ_IVL apart.
        assert ctl.read_completion(0) == READ
        assert ctl.read_completion(0) == READ_IVL + READ
        assert ctl.read_completion(0) == 2 * READ_IVL + READ

    def test_read_after_device_idle(self, ctl):
        ctl.read_completion(0)
        # By cycle 10_000 the device has long finished.
        assert ctl.read_completion(10_000) == 10_000 + READ

    def test_read_rate_saturates_at_bank_bandwidth(self, ctl):
        # 100 reads issued at once: the last one queues ~99 intervals.
        last = 0
        for _ in range(100):
            last = ctl.read_completion(0)
        assert last == 99 * READ_IVL + READ

    def test_reads_have_priority_over_posted_writes(self, ctl):
        # Posted writes retire in the background; a concurrent demand read
        # is not delayed by them (read-priority scheduling).
        for _ in range(10):
            ctl.post_write(0)
        assert ctl.read_completion(0) == READ


class TestWrites:
    def test_posted_write_does_not_stall_when_queue_empty(self, ctl):
        assert ctl.post_write(0) == 0

    def test_write_queue_backpressure(self, ctl):
        # Fill the 64-entry write queue instantly; the 65th posting stalls.
        stalls = [ctl.post_write(0) for _ in range(65)]
        assert all(s == 0 for s in stalls[:64])
        assert stalls[64] > 0

    def test_stall_equals_oldest_completion(self, ctl):
        for _ in range(64):
            ctl.post_write(0)
        # Oldest write retires after one service interval.
        assert ctl.post_write(0) == WRITE_IVL

    def test_queue_drains_over_time(self, ctl):
        for _ in range(64):
            ctl.post_write(0)
        # Much later everything has retired: no stall.
        assert ctl.post_write(64 * WRITE_IVL + 10) == 0
        assert ctl.pending_write_count == 1

    def test_post_writes_aggregates_stall(self, ctl):
        assert ctl.post_writes(0, 64) == 0
        assert ctl.post_writes(0, 2) > 0

    def test_write_stall_statistic(self, ctl):
        for _ in range(65):
            ctl.post_write(0)
        assert ctl.stats.counter("write_stall_cycles").value > 0


class TestDrainTime:
    def test_drain_time_idle(self, ctl):
        assert ctl.drain_time(123) == 123

    def test_drain_time_with_backlog(self, ctl):
        ctl.post_write(0)
        ctl.post_write(0)
        assert ctl.drain_time(0) == 2 * WRITE_IVL

    def test_issue_counters(self, ctl):
        ctl.read_completion(0)
        ctl.post_write(0)
        assert ctl.stats.counter("reads_issued").value == 1
        assert ctl.stats.counter("writes_issued").value == 1


class TestLatencyScaling:
    def test_latencies_follow_config(self):
        cfg = SystemConfig().with_nvm(
            capacity_bytes=1 << 20,
            read_latency_ns=100.0,
            write_latency_ns=300.0,
            banks=1,
        )
        ctl = MemoryController(cfg, NVMDevice(MemoryLayout(1 << 20)))
        assert ctl.read_completion(0) == 300
        ctl2 = MemoryController(cfg, NVMDevice(MemoryLayout(1 << 20)))
        ctl2.post_write(0)
        assert ctl2.drain_time(0) == 900

    def test_single_bank_serializes_reads(self):
        cfg = SystemConfig().with_nvm(capacity_bytes=1 << 20, banks=1)
        ctl = MemoryController(cfg, NVMDevice(MemoryLayout(1 << 20)))
        assert ctl.read_completion(0) == READ
        assert ctl.read_completion(0) == 2 * READ
