"""Unit tests for the split-counter line codec."""

import pytest

from repro.common.constants import (
    BLOCKS_PER_PAGE,
    CACHE_LINE_SIZE,
    MINOR_COUNTER_MAX,
)
from repro.metadata.counters import CounterLine, zero_counter_line


class TestConstruction:
    def test_defaults_to_all_zero(self):
        line = CounterLine()
        assert line.major == 0
        assert line.minors == [0] * BLOCKS_PER_PAGE

    def test_rejects_wrong_minor_count(self):
        with pytest.raises(ValueError):
            CounterLine(minors=[0] * 10)

    def test_rejects_minor_out_of_range(self):
        with pytest.raises(ValueError):
            CounterLine(minors=[MINOR_COUNTER_MAX + 1] + [0] * 63)

    def test_rejects_negative_major(self):
        with pytest.raises(ValueError):
            CounterLine(major=-1)


class TestCodec:
    def test_encoded_width(self):
        assert len(CounterLine().encode()) == CACHE_LINE_SIZE

    def test_zero_line_is_all_zero_bytes(self):
        assert CounterLine().encode() == zero_counter_line()

    def test_roundtrip_simple(self):
        line = CounterLine(major=5)
        line.minors[0] = 1
        line.minors[63] = 127
        line.minors[17] = 64
        assert CounterLine.decode(line.encode()) == line

    def test_roundtrip_dense(self):
        line = CounterLine(major=2**63, minors=[i % 128 for i in range(64)])
        assert CounterLine.decode(line.encode()) == line

    def test_decode_rejects_wrong_size(self):
        with pytest.raises(ValueError):
            CounterLine.decode(b"short")

    def test_minor_fields_do_not_alias(self):
        # Bumping one minor must not disturb its neighbours in the packing.
        line = CounterLine(minors=[127] * 64)
        line.minors[31] = 0
        decoded = CounterLine.decode(line.encode())
        assert decoded.minors[30] == 127
        assert decoded.minors[31] == 0
        assert decoded.minors[32] == 127


class TestIncrement:
    def test_normal_increment(self):
        line = CounterLine()
        overflowed = line.increment(3)
        assert not overflowed
        assert line.counter_pair(3) == (0, 1)
        assert line.counter_pair(2) == (0, 0)

    def test_counter_pair_reflects_major(self):
        line = CounterLine(major=9)
        assert line.counter_pair(0) == (9, 0)

    def test_overflow_rolls_major_and_resets_minors(self):
        line = CounterLine()
        line.minors[5] = MINOR_COUNTER_MAX
        line.minors[6] = 3
        overflowed = line.increment(5)
        assert overflowed
        assert line.major == 1
        assert line.minors == [0] * BLOCKS_PER_PAGE

    def test_increment_to_max_without_overflow(self):
        line = CounterLine()
        for _ in range(MINOR_COUNTER_MAX):
            assert not line.increment(0)
        assert line.counter_pair(0) == (0, MINOR_COUNTER_MAX)

    def test_128th_increment_overflows(self):
        line = CounterLine()
        for _ in range(MINOR_COUNTER_MAX):
            line.increment(0)
        assert line.increment(0)
        assert line.major == 1

    def test_rejects_bad_block_index(self):
        with pytest.raises(ValueError):
            CounterLine().increment(64)
        with pytest.raises(ValueError):
            CounterLine().increment(-1)

    def test_major_exhaustion_raises(self):
        line = CounterLine(major=(1 << 64) - 1)
        line.minors[0] = MINOR_COUNTER_MAX
        with pytest.raises(OverflowError):
            line.increment(0)


class TestCopy:
    def test_copy_is_deep(self):
        line = CounterLine(major=1)
        clone = line.copy()
        clone.increment(0)
        assert line.counter_pair(0) == (1, 0)
        assert clone.counter_pair(0) == (1, 1)

    def test_equality(self):
        assert CounterLine(major=1) == CounterLine(major=1)
        assert CounterLine(major=1) != CounterLine(major=2)
        assert CounterLine() != object()
