"""Seeded randomized fuzz: random workloads, random crash points.

The systematic explorer sweeps one deterministic workload; this suite
varies the workload shape itself (length, seed) and crashes at randomly
chosen recorded persist steps — every cc-NVM variant must come back
consistent from all of them.  The RNG is seeded, so a failure here is a
deterministic reproducer, not flake.
"""

import random

import pytest

from repro.core.schemes import create_scheme
from repro.crashsim import CrashEnumerator, RecoveryOracle, record_workload

from tests.conftest import TINY_CAPACITY

CCNVM_VARIANTS = ("ccnvm", "ccnvm_no_ds", "ccnvm_locate")


@pytest.mark.parametrize("scheme_name", CCNVM_VARIANTS)
def test_random_workload_random_crash_points_all_consistent(scheme_name):
    rng = random.Random(f"crash-fuzz:{scheme_name}")
    for case in range(3):
        steps = rng.randrange(16, 40)
        seed = rng.randrange(1_000_000)
        scheme = create_scheme(
            scheme_name, data_capacity=TINY_CAPACITY, seed=seed
        )
        trace = record_workload(scheme, steps, seed)
        chosen = set(
            rng.sample(range(len(trace.units) + 1), k=8)
        )
        oracle = RecoveryOracle(
            scheme_name, data_capacity=TINY_CAPACITY, seed=seed
        )
        enumerator = CrashEnumerator(trace, seed=seed)
        checked = 0
        for state in enumerator.states(points=lambda k: k in chosen):
            verdict = oracle.evaluate(state)
            assert verdict.ok, (
                f"{scheme_name} case {case} (steps={steps}, seed={seed}) "
                f"state {state.describe()}: {verdict.problems}"
            )
            checked += 1
        assert checked >= len(chosen)


def test_fuzz_is_reproducible():
    """The same seed string must choose the same cases run to run."""
    a = random.Random("crash-fuzz:ccnvm").randrange(1_000_000)
    b = random.Random("crash-fuzz:ccnvm").randrange(1_000_000)
    assert a == b
