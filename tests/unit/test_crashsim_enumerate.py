"""Unit tests for ADR crash-state enumeration.

What must hold: the full prefix reproduces the live machine exactly,
drop-sets never cross a fence and never break per-address program
order, torn batches appear only when explicitly requested, and the
whole expansion is a pure function of (trace, window, budget, seed).
"""

import pytest

from repro.core.schemes import create_scheme
from repro.crashsim import CrashEnumerator, applied_ops, build_state, record_workload
from repro.crashsim.enumerate import DEFAULT_BUDGET, DEFAULT_WINDOW

from tests.conftest import TINY_CAPACITY


@pytest.fixture(scope="module")
def recorded():
    scheme = create_scheme("ccnvm", data_capacity=TINY_CAPACITY)
    trace = record_workload(scheme, 24, seed=3)
    return scheme, trace


class TestParameters:
    def test_defaults_are_exhaustive(self):
        assert 2 ** DEFAULT_WINDOW <= DEFAULT_BUDGET

    def test_invalid_parameters_rejected(self, recorded):
        _, trace = recorded
        with pytest.raises(ValueError):
            CrashEnumerator(trace, window=-1)
        with pytest.raises(ValueError):
            CrashEnumerator(trace, budget=0)


class TestPrefixStates:
    def test_full_prefix_equals_live_machine(self, recorded):
        scheme, trace = recorded
        full = next(
            CrashEnumerator(trace).states(points=lambda k: k == len(trace.units))
        )
        assert full.lines == scheme.nvm.snapshot()
        assert full.registers == scheme.tcb.registers_snapshot()

    def test_empty_prefix_is_the_initial_image(self, recorded):
        _, trace = recorded
        first = next(CrashEnumerator(trace).states(points=lambda k: k == 0))
        assert first.lines == trace.initial_lines
        assert first.registers == trace.initial_registers
        assert first.expected == {}

    def test_window_zero_yields_prefixes_only(self, recorded):
        _, trace = recorded
        states = list(CrashEnumerator(trace, window=0).states())
        assert len(states) == len(trace.units) + 1
        assert all(not s.dropped and s.torn is None for s in states)


class TestDropSets:
    def test_drops_respect_fences_and_droppability(self, recorded):
        _, trace = recorded
        for state in CrashEnumerator(trace).states():
            for i in state.dropped:
                unit = trace.units[i]
                assert unit.droppable
                # No fence may sit between a dropped unit and the crash.
                assert not any(
                    trace.units[j].is_fence for j in range(i + 1, state.k)
                )
                assert state.k - i <= DEFAULT_WINDOW

    def test_drops_preserve_per_address_order(self, recorded):
        """A surviving write implies every earlier same-line write survived."""
        _, trace = recorded
        for state in CrashEnumerator(trace).states():
            for i in state.dropped:
                for j in range(i + 1, state.k):
                    if j in state.dropped:
                        continue
                    assert not (trace.units[j].addrs & trace.units[i].addrs), (
                        f"{state.describe()}: kept unit {j} overwrites "
                        f"dropped unit {i}"
                    )

    def test_states_match_flat_op_replay(self, recorded):
        """Incremental expansion == applying the flat op list from scratch."""
        _, trace = recorded
        enumerator = CrashEnumerator(trace, torn_batches=True)
        for state in enumerator.states(points=lambda k: k % 7 == 0):
            rebuilt = build_state(trace, applied_ops(trace, state))
            assert rebuilt.lines == state.lines, state.describe()
            assert rebuilt.registers == state.registers, state.describe()
            assert rebuilt.expected == state.expected, state.describe()

    def test_sampling_is_seed_deterministic(self, recorded):
        _, trace = recorded
        # budget < 2**window forces the sampled path at busy crash points.
        a = [s.describe() for s in CrashEnumerator(trace, budget=4, seed=9).states()]
        b = [s.describe() for s in CrashEnumerator(trace, budget=4, seed=9).states()]
        c = [s.describe() for s in CrashEnumerator(trace, budget=4, seed=10).states()]
        assert a == b
        assert a != c


class TestTornBatches:
    def test_torn_states_only_on_request(self, recorded):
        _, trace = recorded
        assert all(s.torn is None for s in CrashEnumerator(trace).states())
        torn = [
            s for s in CrashEnumerator(trace, torn_batches=True).states()
            if s.torn is not None
        ]
        assert torn
        for state in torn:
            batch = trace.units[state.k - 1]
            assert batch.kind == "batch"
            assert 1 <= state.torn < len(batch.ops)


class TestIdentity:
    def test_image_hash_separates_distinct_states(self, recorded):
        _, trace = recorded
        states = list(CrashEnumerator(trace).states())
        by_hash: dict[str, object] = {}
        for state in states:
            prior = by_hash.setdefault(state.image_hash(), state)
            assert prior.lines == state.lines
            assert prior.registers == state.registers
        assert 1 < len(by_hash) <= len(states)
