"""Unit tests for failing-trace minimization and the reproducer format."""

import json

import pytest

from repro.analysis.export import reproducer_from_json, reproducer_to_json
from repro.core.schemes import create_scheme
from repro.crashsim import (
    CrashEnumerator,
    RecoveryOracle,
    Reproducer,
    applied_ops,
    build_state,
    from_state,
    minimize,
    record_workload,
    replay,
)

from tests.conftest import TINY_CAPACITY

SEED = 3


@pytest.fixture(scope="module")
def failing():
    """A torn-batch ccnvm violation: trace, failing state, its verdict."""
    scheme = create_scheme("ccnvm", data_capacity=TINY_CAPACITY, seed=SEED)
    trace = record_workload(scheme, 24, seed=SEED)
    oracle = RecoveryOracle("ccnvm", data_capacity=TINY_CAPACITY, seed=SEED)
    for state in CrashEnumerator(trace, torn_batches=True).states():
        if state.torn is None:
            continue
        verdict = oracle.evaluate(state)
        if not verdict.ok:
            return trace, oracle, state, verdict
    raise AssertionError("torn-batch enumeration produced no violation")


class TestMinimize:
    def test_minimizes_to_a_handful_of_ops(self, failing):
        trace, oracle, state, verdict = failing
        ops = applied_ops(trace, state)
        minimal = minimize(trace, ops, oracle, verdict.signature())
        assert len(minimal) <= 10
        assert len(minimal) < len(ops)
        final = oracle.evaluate(build_state(trace, minimal))
        assert verdict.signature() <= final.signature()

    def test_result_is_one_minimal(self, failing):
        trace, oracle, state, verdict = failing
        minimal = minimize(
            trace, applied_ops(trace, state), oracle, verdict.signature()
        )
        for i in range(len(minimal)):
            poked = minimal[:i] + minimal[i + 1:]
            got = oracle.evaluate(build_state(trace, poked))
            assert not verdict.signature() <= got.signature(), (
                f"dropping op {i} still fails: not 1-minimal"
            )

    def test_passing_input_rejected(self, failing):
        trace, oracle, state, _ = failing
        full = applied_ops(trace, (len(trace.units), (), None))
        with pytest.raises(ValueError, match="does not reproduce"):
            minimize(trace, full, oracle, frozenset({"outcome"}))


class TestReproducerArtifact:
    def artifact(self, failing):
        trace, oracle, state, verdict = failing
        minimal = minimize(
            trace, applied_ops(trace, state), oracle, verdict.signature()
        )
        return from_state(
            trace, minimal, verdict,
            description="unit-test torn batch",
            data_capacity=TINY_CAPACITY,
        )

    def test_json_round_trip(self, failing):
        artifact = self.artifact(failing)
        clone = reproducer_from_json(reproducer_to_json(artifact))
        assert clone == artifact

    def test_format_tag_enforced(self, failing):
        document = json.loads(reproducer_to_json(self.artifact(failing)))
        document["format"] = "something-else"
        with pytest.raises(ValueError, match="not a"):
            Reproducer.from_dict(document)

    def test_replay_reproduces_on_a_fresh_oracle(self, failing):
        _, _, _, verdict = failing
        artifact = self.artifact(failing)
        replayed = replay(artifact)
        assert verdict.signature() <= replayed.signature()

    def test_annotations_trimmed_to_surviving_ops(self, failing):
        artifact = self.artifact(failing)
        seqs = {op.seq for op in artifact.ops}
        assert set(artifact.annotations) <= seqs
