"""Unit tests for the recovery-invariant oracle."""

import pytest

from repro.core.schemes import create_scheme
from repro.crashsim import (
    ALLOWED_OUTCOMES,
    CrashEnumerator,
    RecoveryOracle,
    record_workload,
)
from repro.crashsim.workload import payload
from repro.faults.plan import RECOVERY_SITES

from tests.conftest import TINY_CAPACITY

SEED = 3


@pytest.fixture(scope="module")
def trace():
    scheme = create_scheme("ccnvm", data_capacity=TINY_CAPACITY, seed=SEED)
    return record_workload(scheme, 24, seed=SEED)


@pytest.fixture(scope="module")
def oracle():
    return RecoveryOracle("ccnvm", data_capacity=TINY_CAPACITY, seed=SEED)


def state_at(trace, k):
    return next(CrashEnumerator(trace).states(points=lambda p: p == k))


class TestContractTable:
    def test_every_scheme_has_a_contract(self):
        from repro.core.schemes import SCHEME_LABELS

        assert set(ALLOWED_OUTCOMES) == set(SCHEME_LABELS)
        for scheme in ("ccnvm", "ccnvm_no_ds", "ccnvm_locate"):
            assert ALLOWED_OUTCOMES[scheme] == {"RECOVERED"}

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="no recovery contract"):
            RecoveryOracle("magic", data_capacity=TINY_CAPACITY, seed=0)


class TestVerdicts:
    def test_clean_state_passes(self, trace, oracle):
        verdict = oracle.evaluate(state_at(trace, len(trace.units)))
        assert verdict.ok
        assert verdict.outcome == "RECOVERED"
        assert verdict.signature() == frozenset()

    def test_oracle_instance_is_reusable(self, trace, oracle):
        """One scheme instance, rewound per state — order must not matter."""
        first = oracle.evaluate(state_at(trace, 5))
        again = oracle.evaluate(state_at(trace, 5))
        assert first.to_dict() == again.to_dict()

    def test_wrong_expected_contents_flagged(self, trace, oracle):
        state = state_at(trace, len(trace.units))
        addr = sorted(state.expected)[0]
        state.expected[addr] = payload(SEED, 999_999)
        verdict = oracle.evaluate(state)
        assert not verdict.ok
        assert "data" in verdict.signature()
        assert verdict.outcome == "FAILED"

    def test_tampered_tree_flagged(self, trace, oracle):
        """Flipping a durable line the roots cover must not pass."""
        state = state_at(trace, len(trace.units))
        addr = sorted(state.expected)[0]
        line = bytearray(state.lines[addr])
        line[0] ^= 0xFF
        state.lines[addr] = bytes(line)
        verdict = oracle.evaluate(state)
        assert not verdict.ok


class TestNestedSchedules:
    @pytest.mark.parametrize("site", sorted(RECOVERY_SITES))
    def test_single_nested_crash_fires_and_recovers(self, trace, oracle, site):
        state = state_at(trace, len(trace.units))
        verdict = oracle.evaluate(state, schedule=[(site, 1)])
        assert verdict.fired_sites == (site,)
        assert verdict.ok, verdict.problems

    def test_depth_two_schedule_fires_in_sequence(self, trace, oracle):
        state = state_at(trace, len(trace.units))
        schedule = [("recovery.after_counters", 1), ("recovery.mid_rebuild", 1)]
        verdict = oracle.evaluate(state, schedule=schedule)
        assert verdict.fired_sites == (
            "recovery.after_counters", "recovery.mid_rebuild",
        )
        assert verdict.ok, verdict.problems
