"""Unit tests for equivalence-class crash-state reduction.

What must hold: the recovery views never drift from the schemes' actual
``RecoveryPolicy``; the reduced enumerator covers exactly the brute
force's states with the same outcome histogram and byte-identical
violation findings at a >=5x oracle saving; evaluating *every* witness
(metamorphic spot=everything) never contradicts a representative; the
pinning analysis is exercised on a synthetic merkle-only drop candidate
(real traces never produce one — see DESIGN.md); and the satellite
fixes (nested-register image-hash canonicalization, rejection-sampler
coverage accounting) stay fixed.
"""

from collections import Counter

import pytest

from repro.core.schemes import create_scheme
from repro.crashsim import CrashEnumerator, record_workload
from repro.crashsim.enumerate import CrashState, canonical_value
from repro.crashsim.oracle import ALLOWED_OUTCOMES, ClassOracle, RecoveryOracle
from repro.crashsim.reduce import (
    RECOVERY_VIEWS,
    CrashStateReducer,
    ReducedEnumerator,
    materialize,
    pin_variants,
    recovery_view,
)
from repro.crashsim.trace import PersistOp, PersistTrace, TraceUnit

from tests.conftest import TINY_CAPACITY

SEED = 7
STEPS = 48
WINDOW = 4
#: Large enough that every drop-set expansion stays exhaustive.
EXHAUSTIVE_BUDGET = 1 << 10


def _record(scheme_name: str, steps: int = STEPS, torn: bool = False):
    scheme = create_scheme(scheme_name, data_capacity=TINY_CAPACITY, seed=SEED)
    trace = record_workload(scheme, steps, seed=SEED)
    return trace


def _brute(trace, torn: bool = False):
    return CrashEnumerator(
        trace,
        window=WINDOW,
        budget=EXHAUSTIVE_BUDGET,
        seed=SEED,
        torn_batches=torn,
    )


def _reduced(trace, scheme_name: str, spot: int, torn: bool = False):
    reducer = CrashStateReducer(trace, scheme_name, TINY_CAPACITY, SEED)
    enumerator = ReducedEnumerator(
        trace, reducer, window=WINDOW, seed=SEED, torn_batches=torn
    )
    oracle = ClassOracle(
        RecoveryOracle(scheme_name, TINY_CAPACITY, SEED), reducer, spot=spot
    )
    return reducer, enumerator, oracle


def _run_reduced(trace, scheme_name, spot, torn=False):
    """Drive the reduce-mode loop; returns (enumerator, oracle, stats)."""
    reducer, enumerator, oracle = _reduced(trace, scheme_name, spot, torn)
    outcomes: Counter[str] = Counter()
    violations = []
    covered = 0
    for state in enumerator.states():
        weight = 1 if state.torn is not None else enumerator.weight(state.k)
        verdict, _role = oracle.submit(state, weight=weight)
        if verdict.ok:
            outcomes[verdict.outcome] += weight
            covered += weight
            continue
        outcomes[verdict.outcome] += 1
        covered += 1
        violations.append((state.describe(), verdict.to_dict()))
        if state.torn is None:
            for vdrop in pin_variants(state, enumerator.pins.get(state.k, ())):
                vstate = materialize(trace, state.k, vdrop)
                vverdict = oracle.evaluate_raw(vstate)
                outcomes[vverdict.outcome] += 1
                covered += 1
                if not vverdict.ok:
                    violations.append((vstate.describe(), vverdict.to_dict()))
    return enumerator, oracle, {
        "outcomes": outcomes,
        "violations": sorted(violations),
        "covered": covered,
    }


def _run_brute(trace, scheme_name, torn=False):
    oracle = RecoveryOracle(scheme_name, TINY_CAPACITY, SEED)
    enumerator = _brute(trace, torn)
    outcomes: Counter[str] = Counter()
    violations = []
    count = 0
    for state in enumerator.states():
        count += 1
        verdict = oracle.evaluate(state)
        outcomes[verdict.outcome] += 1
        if not verdict.ok:
            violations.append((state.describe(), verdict.to_dict()))
    assert enumerator.sample_stats["points"] == 0, "brute run must be exhaustive"
    return {
        "outcomes": outcomes,
        "violations": sorted(violations),
        "covered": count,
    }


class TestCanonicalValue:
    def test_dict_order_independent(self):
        a = {"x": {1: "a", 2: "b"}, "y": 3}
        b = {"y": 3, "x": {2: "b", 1: "a"}}
        assert canonical_value(a) == canonical_value(b)

    def test_distinct_values_stay_distinct(self):
        assert canonical_value({1: 2}) != canonical_value({1: 3})

    def test_sequences_normalize_to_tuples(self):
        assert canonical_value([1, [2, 3]]) == (1, (2, 3))


class TestImageHashCanonicalization:
    """Regression (satellite): two structurally equal register files must
    hash identically regardless of ``counter_log`` insertion order."""

    @staticmethod
    def _state(counter_log: dict) -> CrashState:
        registers = {
            "root_new": b"\x01" * 32,
            "root_old": b"\x01" * 32,
            "nwb": 2,
            "counter_log": counter_log,
            "recovery_pending": False,
        }
        return CrashState(1, (), None, {0x40: b"\x02" * 64}, registers, {})

    def test_counter_log_order_does_not_change_identity(self):
        forward = self._state({0x1000: 1, 0x2000: 2})
        backward = self._state({0x2000: 2, 0x1000: 1})
        assert forward.image_hash() == backward.image_hash()

    def test_counter_log_contents_do_change_identity(self):
        assert (
            self._state({0x1000: 1}).image_hash()
            != self._state({0x1000: 2}).image_hash()
        )


class TestSamplerAccounting:
    """Satellite: the sampled fallback must account for its coverage."""

    @pytest.fixture(scope="class")
    def trace(self):
        return _record("ccnvm", steps=24)

    def test_exhaustive_run_reports_no_sampling(self, trace):
        enumerator = CrashEnumerator(trace, window=WINDOW, budget=EXHAUSTIVE_BUDGET)
        list(enumerator.states())
        assert enumerator.sample_stats == {
            "points": 0, "requested": 0, "sampled": 0,
        }

    def test_sampled_run_counts_points_and_shortfall(self, trace):
        enumerator = CrashEnumerator(trace, window=WINDOW, budget=4)
        states = list(enumerator.states())
        stats = enumerator.sample_stats
        assert stats["points"] > 0
        assert stats["requested"] == stats["points"] * 4
        assert 0 < stats["sampled"] <= stats["requested"]
        # Every sampled drop-set was actually yielded as a state.
        assert sum(1 for s in states if s.dropped) >= stats["sampled"]

    def test_reduced_enumerator_never_samples(self, trace):
        reducer = CrashStateReducer(trace, "ccnvm", TINY_CAPACITY, SEED)
        enumerator = ReducedEnumerator(trace, reducer, window=WINDOW, seed=SEED)
        list(enumerator.states())
        assert enumerator.sample_stats == {
            "points": 0, "requested": 0, "sampled": 0,
        }


class _CapturedPolicy(Exception):
    def __init__(self, policy):
        self.policy = policy


class TestRecoveryViewGuard:
    """The reducer's views mirror each scheme's RecoveryPolicy; this
    guard fails the moment a scheme's recovery wiring drifts."""

    @pytest.mark.parametrize("name", sorted(RECOVERY_VIEWS))
    def test_view_matches_scheme_policy(self, name, monkeypatch):
        from repro.core.recovery import RecoveryManager

        scheme = create_scheme(name, data_capacity=TINY_CAPACITY, seed=SEED)

        def capture(self):
            raise _CapturedPolicy(self.policy)

        monkeypatch.setattr(RecoveryManager, "run", capture)
        with pytest.raises(_CapturedPolicy) as caught:
            scheme.recover()
        policy = caught.value.policy
        view = recovery_view(name)
        assert view.check_roots == policy.check_tree_against
        assert view.freshness == policy.freshness_check
        assert view.counter_log == policy.use_counter_log
        effective = (
            view.retry_limit
            if view.retry_limit is not None
            else scheme.config.epoch.update_limit
        )
        assert effective == policy.retry_limit

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            recovery_view("nope")


class TestReductionSoundness:
    """The acceptance surface: byte-identical findings, >=5x savings."""

    @pytest.fixture(scope="class")
    def traces(self):
        return {name: _record(name) for name in sorted(ALLOWED_OUTCOMES)}

    @pytest.mark.parametrize("name", sorted(ALLOWED_OUTCOMES))
    def test_reduced_matches_brute_force_exactly(self, name, traces):
        brute = _run_brute(traces[name], name)
        enumerator, oracle, reduced = _run_reduced(traces[name], name, spot=1)
        assert reduced["covered"] == brute["covered"]
        assert reduced["outcomes"] == brute["outcomes"]
        assert reduced["violations"] == brute["violations"]
        assert oracle.mismatches == []
        assert enumerator.sample_stats["points"] == 0

    @pytest.mark.parametrize("name", sorted(ALLOWED_OUTCOMES))
    def test_reduction_ratio_at_least_five(self, name, traces):
        _, oracle, reduced = _run_reduced(traces[name], name, spot=0)
        assert oracle.calls > 0
        ratio = reduced["covered"] / oracle.calls
        assert ratio >= 5.0, (
            f"{name}: {reduced['covered']} states / {oracle.calls} calls "
            f"= {ratio:.2f}x"
        )

    @pytest.mark.parametrize("name", sorted(ALLOWED_OUTCOMES))
    def test_metamorphic_every_witness_agrees(self, name, traces):
        """spot=everything evaluates every witness for real; any
        (outcome, signature) disagreement with its representative is a
        fingerprint soundness bug."""
        _, oracle, _ = _run_reduced(traces[name], name, spot=1 << 30)
        assert oracle.mismatches == []
        # Everything was actually evaluated, so the check had teeth.
        total = sum(c.witnesses for c in oracle.classes.values())
        evaluated = sum(c.evaluated for c in oracle.classes.values())
        assert evaluated == total

    def test_torn_violations_byte_identical(self):
        """Violating (torn) states take the concrete-fingerprint path
        and must reproduce the brute force's findings verbatim."""
        trace = _record("ccnvm", steps=32)
        brute = _run_brute(trace, "ccnvm", torn=True)
        _, oracle, reduced = _run_reduced(trace, "ccnvm", spot=1, torn=True)
        assert brute["violations"], "torn batches must violate the contract"
        assert reduced["violations"] == brute["violations"]
        assert reduced["outcomes"] == brute["outcomes"]
        assert oracle.mismatches == []


def _first_line_in_region(layout, region: str, capacity: int) -> int:
    addr = 0
    while addr < capacity * 8:
        if layout.region_of(addr) == region:
            return addr
        addr += 64
    raise AssertionError(f"no {region} line found")


class TestPinning:
    """The invisibility analysis, on a synthetic trace.

    Real traces never produce a pinnable unit (metadata drains only via
    fenced batches), so the machinery is exercised here with a
    handcrafted merkle-only drop candidate.
    """

    @pytest.fixture(scope="class")
    def synthetic(self):
        scheme = create_scheme("no_cc", data_capacity=TINY_CAPACITY, seed=SEED)
        layout = scheme.nvm.layout
        merkle_addr = _first_line_in_region(layout, "merkle", TINY_CAPACITY)
        data_addr = _first_line_in_region(layout, "data", TINY_CAPACITY)
        trace = PersistTrace(
            scheme="no_cc",
            seed=SEED,
            initial_lines=scheme.nvm.snapshot(),
            initial_registers=scheme.tcb.registers_snapshot(),
        )
        trace.units = [
            TraceUnit(0, "group", (
                PersistOp(0, "write", "WritePendingQueue", merkle_addr,
                          b"\x11" * 64),
            )),
            TraceUnit(1, "group", (
                PersistOp(1, "write", "WritePendingQueue", data_addr,
                          b"\x22" * 64),
            )),
        ]
        reducer = CrashStateReducer(trace, "no_cc", TINY_CAPACITY, SEED)
        return trace, reducer, merkle_addr

    def test_merkle_only_unit_is_pinned(self, synthetic):
        _, reducer, _ = synthetic
        assert reducer.pinned_candidates([0, 1]) == (0,)

    def test_observable_view_pins_nothing(self, synthetic):
        trace, _, _ = synthetic
        reducer = CrashStateReducer(trace, "ccnvm", TINY_CAPACITY, SEED)
        assert reducer.pinned_candidates([0, 1]) == ()

    def test_pinned_weight_covers_the_brute_states(self, synthetic):
        trace, reducer, _ = synthetic
        enumerator = ReducedEnumerator(trace, reducer, window=WINDOW, seed=SEED)
        states = [s for s in enumerator.states() if s.k == 2]
        brute = [s for s in _brute(trace).states() if s.k == 2]
        assert enumerator.pins[2] == (0,)
        assert enumerator.weight(2) == 2
        # 2 materialized states x weight 2 == 4 brute states.
        assert len(states) * enumerator.weight(2) == len(brute)
        dropped = {s.dropped for s in states}
        assert dropped == {(), (1,)}

    def test_pin_variants_materialize_the_missing_states(self, synthetic):
        trace, _, _ = synthetic
        brute_by_drop = {s.dropped: s for s in _brute(trace).states() if s.k == 2}
        state = materialize(trace, 2, (1,))
        variants = pin_variants(state, (0,))
        assert variants == [(0, 1)]
        rebuilt = materialize(trace, 2, variants[0])
        twin = brute_by_drop[(0, 1)]
        assert rebuilt.lines == twin.lines
        assert rebuilt.registers == twin.registers

    def test_pinned_drop_is_invisible_to_the_fingerprint(self, synthetic):
        trace, reducer, _ = synthetic
        with_merkle = materialize(trace, 2, ())
        without_merkle = materialize(trace, 2, (0,))
        assert (
            reducer.fingerprint(with_merkle)
            == reducer.fingerprint(without_merkle)
        )
