"""Unit tests for persist-trace recording.

The recorder's contract: every durable micro-op appears exactly once, in
order, at the right grain — combined groups as one unit, atomic batches
as one all-or-nothing unit, TCB register updates interleaved at their
true position — and the recorded data is the *post-write* full line, so
replay is plain assignment.
"""

import pytest

from repro.core.schemes import create_scheme
from repro.crashsim import PersistOp, PersistTraceRecorder, TraceUnit, record_workload
from repro.crashsim.trace import registers_from_dict, registers_to_dict

from tests.conftest import TINY_CAPACITY


@pytest.fixture
def scheme():
    return create_scheme("ccnvm", data_capacity=TINY_CAPACITY)


def recorded(scheme, steps=24, seed=3):
    return record_workload(scheme, steps, seed)


class TestRecorderWiring:
    def test_attach_twice_rejected(self, scheme):
        recorder = PersistTraceRecorder(scheme)
        recorder.attach()
        with pytest.raises(RuntimeError, match="already attached"):
            recorder.attach()

    def test_detach_without_attach_rejected(self, scheme):
        with pytest.raises(RuntimeError, match="not attached"):
            PersistTraceRecorder(scheme).detach()

    def test_detach_removes_hooks(self, scheme):
        recorder = PersistTraceRecorder(scheme)
        recorder.attach()
        assert scheme.wpq.trace_hook is not None
        assert scheme.tcb.trace_hook is not None
        recorder.detach()
        assert scheme.wpq.trace_hook is None
        assert scheme.tcb.trace_hook is None

    def test_annotate_unknown_addr_rejected(self, scheme):
        recorder = PersistTraceRecorder(scheme)
        recorder.attach()
        with pytest.raises(ValueError, match="no recorded write"):
            recorder.annotate(0x9999, b"x" * 64)


class TestTraceStructure:
    def test_initial_state_snapshotted(self, scheme):
        before_lines = scheme.nvm.snapshot()
        before_regs = scheme.tcb.registers_snapshot()
        trace = recorded(scheme)
        assert trace.initial_lines == before_lines
        assert trace.initial_registers == before_regs

    def test_unit_kinds_and_indices(self, scheme):
        trace = recorded(scheme)
        kinds = {u.kind for u in trace.units}
        # A cc-NVM workload long enough to close epochs produces all three.
        assert kinds == {"group", "tcb", "batch"}
        assert [u.index for u in trace.units] == list(range(len(trace.units)))

    def test_writeback_group_is_one_unit(self, scheme):
        """Data + its HMAC sub-line + the Nwb bump share one fate."""
        trace = recorded(scheme)
        group = next(u for u in trace.units if u.kind == "group")
        kinds = [op.kind for op in group.ops]
        assert "write" in kinds and "write_partial" in kinds
        assert any(op.mutator == "count_writeback" for op in group.ops)

    def test_batches_are_fences_and_not_droppable(self, scheme):
        trace = recorded(scheme)
        for unit in trace.units:
            if unit.kind == "batch":
                assert unit.is_fence and not unit.droppable
            elif unit.kind == "group":
                assert unit.droppable
            else:
                assert not unit.droppable

    def test_epoch_commit_is_a_fence(self, scheme):
        trace = recorded(scheme)
        commits = [
            u for u in trace.units
            if any(op.mutator == "commit_root" for op in u.ops)
        ]
        assert commits, "the workload must close at least one epoch"
        assert all(u.is_fence for u in commits)

    def test_ops_record_post_write_lines(self, scheme):
        """Replaying every op must land exactly on the final device image."""
        trace = recorded(scheme)
        lines = dict(trace.initial_lines)
        for unit in trace.units:
            for op in unit.ops:
                if op.kind != "tcb":
                    lines[op.addr] = op.data
        assert lines == scheme.nvm.snapshot()

    def test_annotations_point_at_data_writes(self, scheme):
        trace = recorded(scheme, steps=12, seed=5)
        assert trace.annotations
        by_seq = {op.seq: op for u in trace.units for op in u.ops}
        from repro.crashsim.workload import payload as wl_payload

        known = {wl_payload(5, step) for step in range(-8, 12)}
        for seq, plaintext in trace.annotations.items():
            assert by_seq[seq].kind == "write"
            assert plaintext in known

    def test_domains_carry_persistence_declarations(self, scheme):
        trace = recorded(scheme)
        assert set(trace.domains) == {"WritePendingQueue", "TCB", "NVMDevice"}
        assert "root_old" in trace.domains["TCB"]["persistent"]


class TestSerialization:
    def test_op_and_unit_round_trip(self, scheme):
        trace = recorded(scheme, steps=8)
        for unit in trace.units[:20]:
            clone = TraceUnit.from_dict(unit.to_dict())
            assert clone == unit
            for op in unit.ops:
                assert PersistOp.from_dict(op.to_dict()) == op

    def test_register_snapshot_round_trip(self, scheme):
        snapshot = scheme.tcb.registers_snapshot()
        assert registers_from_dict(registers_to_dict(snapshot)) == snapshot
