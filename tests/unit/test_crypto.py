"""Unit tests for the crypto substrate: PRF, CME cipher, HMAC engine."""

import pytest

from repro.common.constants import CACHE_LINE_SIZE, HMAC_SIZE
from repro.crypto.cme import CounterModeCipher, generate_otp, make_seed, xor_bytes
from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey, constant_time_equal, keyed_hash, prf


KEY = SecretKey.from_seed("unit-test-key")
OTHER_KEY = SecretKey.from_seed("other-key")


class TestSecretKey:
    def test_from_seed_deterministic(self):
        assert SecretKey.from_seed(42) == SecretKey.from_seed(42)

    def test_different_seeds_differ(self):
        assert SecretKey.from_seed(1) != SecretKey.from_seed(2)

    def test_rejects_short_material(self):
        with pytest.raises(ValueError):
            SecretKey(b"short")

    def test_repr_hides_material(self):
        assert "hidden" in repr(KEY)
        assert KEY.material.hex() not in repr(KEY)


class TestPrf:
    def test_deterministic(self):
        assert prf(KEY, b"a", b"b") == prf(KEY, b"a", b"b")

    def test_key_separation(self):
        assert prf(KEY, b"x") != prf(OTHER_KEY, b"x")

    def test_output_length(self):
        assert len(prf(KEY, b"x")) == CACHE_LINE_SIZE
        assert len(prf(KEY, b"x", out_len=100)) == 100
        assert len(prf(KEY, b"x", out_len=7)) == 7

    def test_injective_part_encoding(self):
        # (a, b) must not collide with (ab, '') — length prefixes at work.
        assert prf(KEY, b"ab", b"c") != prf(KEY, b"a", b"bc")
        assert prf(KEY, b"ab", b"") != prf(KEY, b"a", b"b")

    def test_avalanche(self):
        a = prf(KEY, b"seed-0")
        b = prf(KEY, b"seed-1")
        differing = sum(x != y for x, y in zip(a, b))
        assert differing > CACHE_LINE_SIZE // 2


class TestKeyedHash:
    def test_width_is_128_bits(self):
        assert len(keyed_hash(KEY, b"data")) == HMAC_SIZE

    def test_deterministic(self):
        assert keyed_hash(KEY, b"d", b"a") == keyed_hash(KEY, b"d", b"a")

    def test_key_separation(self):
        assert keyed_hash(KEY, b"d") != keyed_hash(OTHER_KEY, b"d")

    def test_constant_time_equal(self):
        assert constant_time_equal(b"abc", b"abc")
        assert not constant_time_equal(b"abc", b"abd")


class TestSeed:
    def test_fixed_width(self):
        assert len(make_seed(0, 0, 0)) == 18
        assert len(make_seed(2**40, 2**50, 127)) == 18

    def test_no_aliasing_between_components(self):
        assert make_seed(1, 0, 0) != make_seed(0, 1, 0)
        assert make_seed(0, 1, 0) != make_seed(0, 0, 1)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_seed(-1, 0, 0)


class TestXorBytes:
    def test_xor_roundtrip(self):
        data = bytes(range(64))
        pad = prf(KEY, b"pad")
        assert xor_bytes(xor_bytes(data, pad), pad) == data

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            xor_bytes(b"ab", b"a")


class TestCounterModeCipher:
    def setup_method(self):
        self.cipher = CounterModeCipher(KEY)
        self.plaintext = bytes(range(64))

    def test_roundtrip(self):
        ct = self.cipher.encrypt(self.plaintext, 0x1000, 3, 7)
        assert self.cipher.decrypt(ct, 0x1000, 3, 7) == self.plaintext

    def test_ciphertext_differs_from_plaintext(self):
        ct = self.cipher.encrypt(self.plaintext, 0x1000, 3, 7)
        assert ct != self.plaintext

    def test_counter_changes_pad(self):
        a = self.cipher.encrypt(self.plaintext, 0x1000, 3, 7)
        b = self.cipher.encrypt(self.plaintext, 0x1000, 3, 8)
        c = self.cipher.encrypt(self.plaintext, 0x1000, 4, 7)
        assert a != b
        assert a != c

    def test_address_changes_pad(self):
        a = self.cipher.encrypt(self.plaintext, 0x1000, 3, 7)
        b = self.cipher.encrypt(self.plaintext, 0x1040, 3, 7)
        assert a != b

    def test_wrong_counter_garbles_decryption(self):
        ct = self.cipher.encrypt(self.plaintext, 0x1000, 3, 7)
        assert self.cipher.decrypt(ct, 0x1000, 3, 8) != self.plaintext

    def test_rejects_partial_lines(self):
        with pytest.raises(ValueError):
            self.cipher.encrypt(b"short", 0, 0, 0)
        with pytest.raises(ValueError):
            self.cipher.decrypt(b"short", 0, 0, 0)

    def test_otp_matches_cipher(self):
        pad = generate_otp(KEY, 0x40, 1, 2)
        ct = self.cipher.encrypt(self.plaintext, 0x40, 1, 2)
        assert xor_bytes(ct, pad) == self.plaintext


class TestHmacEngine:
    def setup_method(self):
        self.engine = HmacEngine(KEY)
        self.block = prf(KEY, b"block-content")

    def test_data_hmac_width(self):
        assert len(self.engine.data_hmac(self.block, 0x80, 1, 2)) == HMAC_SIZE

    def test_data_hmac_depends_on_every_input(self):
        base = self.engine.data_hmac(self.block, 0x80, 1, 2)
        other_data = self.engine.data_hmac(prf(KEY, b"x"), 0x80, 1, 2)
        other_addr = self.engine.data_hmac(self.block, 0xC0, 1, 2)
        other_major = self.engine.data_hmac(self.block, 0x80, 2, 2)
        other_minor = self.engine.data_hmac(self.block, 0x80, 1, 3)
        assert len({base, other_data, other_addr, other_major, other_minor}) == 5

    def test_counter_hmac_depends_on_content(self):
        node = bytes(64)
        other = bytes([1]) + bytes(63)
        assert self.engine.counter_hmac(node) != self.engine.counter_hmac(other)

    def test_counter_hmac_uniform_for_equal_content(self):
        # Positional authentication: equal contents hash equally; the slot
        # position in the parent is what pins a node to its place.
        assert self.engine.counter_hmac(bytes(64)) == self.engine.counter_hmac(
            bytes(64)
        )

    def test_computation_counters(self):
        self.engine.data_hmac(self.block, 0, 0, 0)
        self.engine.data_hmac(self.block, 0, 0, 0)
        self.engine.counter_hmac(bytes(64))
        assert self.engine.data_hmac_count == 2
        assert self.engine.counter_hmac_count == 1

    def test_verify_checks_width(self):
        with pytest.raises(ValueError):
            self.engine.verify(b"short", bytes(HMAC_SIZE))

    def test_verify_matches(self):
        mac = self.engine.data_hmac(self.block, 0, 0, 0)
        assert self.engine.verify(mac, bytes(mac))
        tampered = bytes([mac[0] ^ 1]) + mac[1:]
        assert not self.engine.verify(mac, tampered)

    def test_rejects_partial_line_inputs(self):
        with pytest.raises(ValueError):
            self.engine.data_hmac(b"short", 0, 0, 0)
        with pytest.raises(ValueError):
            self.engine.counter_hmac(b"short")
