"""Unit tests for the dirty address queue and epoch bookkeeping."""

import pytest

from repro.core.drainer import DirtyAddressQueue, DrainTrigger


class TestReservation:
    def test_starts_empty(self):
        q = DirtyAddressQueue(8)
        assert len(q) == 0
        assert q.free_entries == 8

    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            DirtyAddressQueue(0)

    def test_reserve_and_contains(self):
        q = DirtyAddressQueue(8)
        q.reserve([64, 128])
        assert 64 in q
        assert 128 in q
        assert 192 not in q
        assert len(q) == 2

    def test_deduplication(self):
        # "we skip those dirty cachelines if their addresses have already
        # been put in the dirty address queue" (Section 4.2).
        q = DirtyAddressQueue(8)
        q.reserve([64, 128])
        q.reserve([64, 192])
        assert len(q) == 3
        assert q.stats.counter("reservations").value == 3

    def test_fifo_order_kept(self):
        q = DirtyAddressQueue(8)
        q.reserve([192, 64])
        q.reserve([128, 64])
        assert q.addresses() == [192, 64, 128]

    def test_overflow_raises(self):
        q = DirtyAddressQueue(2)
        q.reserve([0, 64])
        with pytest.raises(OverflowError):
            q.reserve([128])


class TestFits:
    def test_fits_counts_only_new_addresses(self):
        q = DirtyAddressQueue(4)
        q.reserve([0, 64, 128])
        assert q.fits([0, 64, 192])  # one new address, one slot left
        assert not q.fits([192, 256])  # two new, one slot

    def test_fits_handles_duplicate_input(self):
        q = DirtyAddressQueue(2)
        assert q.fits([0, 0, 0])  # one distinct address

    def test_fits_empty_list(self):
        q = DirtyAddressQueue(1)
        q.reserve([0])
        assert q.fits([])


class TestCommit:
    def test_commit_returns_addresses_and_clears(self):
        q = DirtyAddressQueue(8)
        q.reserve([64, 128])
        addrs = q.commit(DrainTrigger.QUEUE_FULL)
        assert addrs == [64, 128]
        assert len(q) == 0
        assert q.free_entries == 8

    def test_trigger_statistics(self):
        q = DirtyAddressQueue(8)
        for trigger in (
            DrainTrigger.QUEUE_FULL,
            DrainTrigger.QUEUE_FULL,
            DrainTrigger.META_EVICTION,
            DrainTrigger.UPDATE_LIMIT,
            DrainTrigger.OVERFLOW,
            DrainTrigger.FLUSH,
        ):
            q.reserve([64])
            q.commit(trigger)
        assert q.total_drains == 6
        assert q.drains_by_trigger() == {
            "queue_full": 2,
            "meta_eviction": 1,
            "update_limit": 1,
            "overflow": 1,
            "flush": 1,
        }

    def test_epoch_writeback_distribution(self):
        q = DirtyAddressQueue(8)
        for _ in range(5):
            q.count_writeback()
        q.reserve([0])
        q.commit(DrainTrigger.FLUSH)
        q.count_writeback()
        q.reserve([64])
        q.commit(DrainTrigger.FLUSH)
        dist = q.stats.distribution("epoch_writebacks")
        assert dist.count == 2
        assert dist.mean == 3.0
        assert dist.max == 5

    def test_epoch_lines_distribution(self):
        q = DirtyAddressQueue(8)
        q.reserve([0, 64, 128])
        q.commit(DrainTrigger.FLUSH)
        assert q.stats.distribution("epoch_lines").mean == 3.0


class TestDrop:
    def test_drop_loses_contents_without_stats(self):
        q = DirtyAddressQueue(8)
        q.reserve([0, 64])
        q.count_writeback()
        q.drop()
        assert len(q) == 0
        assert q.total_drains == 0
        # A fresh epoch starts from zero write-backs.
        q.reserve([128])
        q.commit(DrainTrigger.FLUSH)
        assert q.stats.distribution("epoch_writebacks").mean == 0.0
