"""Unit tests for the encryption engine's functional data path."""

import pytest

from repro.common.constants import (
    BLOCKS_PER_PAGE,
    CACHE_LINE_SIZE,
    HMAC_SIZE,
)
from repro.core.engine import EncryptionEngine
from repro.crypto.cme import CounterModeCipher
from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey
from repro.mem.nvm import NVMDevice
from repro.mem.wpq import WritePendingQueue
from repro.metadata.counters import CounterLine
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout
from repro.metadata.metacache import IntegrityError


ENC = SecretKey.from_seed("engine-enc")
MAC = SecretKey.from_seed("engine-mac")


@pytest.fixture
def engine():
    layout = MemoryLayout(1 << 20)
    genesis = GenesisImage(layout, ENC, MAC)
    nvm = NVMDevice(layout, initializer=genesis.line)
    wpq = WritePendingQueue(nvm, entries=64)
    return EncryptionEngine(
        CounterModeCipher(ENC), HmacEngine(MAC), nvm, wpq
    )


PLAINTEXT = bytes(range(64))


class TestWriteReadRoundtrip:
    def test_roundtrip(self, engine):
        counters = CounterLine()
        counters.increment(1)
        engine.write_data_block(64, PLAINTEXT, counters)
        assert engine.read_data_block(64, counters) == PLAINTEXT

    def test_ciphertext_lands_in_nvm(self, engine):
        counters = CounterLine()
        counters.increment(1)
        engine.write_data_block(64, PLAINTEXT, counters)
        assert engine.nvm.peek(64) != PLAINTEXT

    def test_data_hmac_stored_beside_data(self, engine):
        counters = CounterLine()
        counters.increment(0)
        engine.write_data_block(0, PLAINTEXT, counters)
        hmac_line, offset = engine.layout.data_hmac_location(0)
        stored = engine.nvm.peek(hmac_line)[offset:offset + HMAC_SIZE]
        expected = engine.hmac.data_hmac(engine.nvm.peek(0), 0, 0, 1)
        assert stored == expected

    def test_rejects_partial_plaintext(self, engine):
        with pytest.raises(ValueError):
            engine.write_data_block(0, b"short", CounterLine())

    def test_stale_counter_fails_authentication(self, engine):
        counters = CounterLine()
        counters.increment(0)
        engine.write_data_block(0, PLAINTEXT, counters)
        with pytest.raises(IntegrityError):
            engine.read_data_block(0, CounterLine())  # counter (0,0) is stale

    def test_tampered_ciphertext_fails_authentication(self, engine):
        counters = CounterLine()
        counters.increment(0)
        engine.write_data_block(0, PLAINTEXT, counters)
        raw = engine.nvm.peek(0)
        engine.nvm.poke(0, bytes([raw[0] ^ 1]) + raw[1:])
        with pytest.raises(IntegrityError):
            engine.read_data_block(0, counters)

    def test_verify_false_skips_authentication(self, engine):
        counters = CounterLine()
        counters.increment(0)
        engine.write_data_block(0, PLAINTEXT, counters)
        raw = engine.nvm.peek(0)
        engine.nvm.poke(0, bytes([raw[0] ^ 1]) + raw[1:])
        garbled = engine.read_data_block(0, counters, verify=False)
        assert garbled != PLAINTEXT  # decrypts, differently

    def test_genesis_block_reads_as_zero(self, engine):
        assert engine.read_data_block(128, CounterLine()) == bytes(CACHE_LINE_SIZE)

    def test_event_counters(self, engine):
        counters = CounterLine()
        counters.increment(0)
        engine.write_data_block(0, PLAINTEXT, counters)
        engine.read_data_block(0, counters)
        assert engine.stats.counter("data_writebacks").value == 1
        assert engine.stats.counter("data_fills").value == 1


class TestPageReencryption:
    def _overflow_setup(self, engine):
        """Write every block of page 0, then roll the counters' major."""
        old = CounterLine()
        for block in range(BLOCKS_PER_PAGE):
            old.minors[block] = 5
            engine.write_data_block(
                block * CACHE_LINE_SIZE, bytes([block]) * 64, old
            )
        new = CounterLine(major=1)
        new.minors[7] = 1  # the triggering block gets a fresh minor
        return old, new

    def test_reencrypt_page_rewrites_others(self, engine):
        old, new = self._overflow_setup(engine)
        rewritten = engine.reencrypt_page(0, old, new, skip_block=7)
        assert rewritten == BLOCKS_PER_PAGE - 1
        # Every non-skipped block decrypts under the new counters.
        for block in range(BLOCKS_PER_PAGE):
            if block == 7:
                continue
            data = engine.read_data_block(block * CACHE_LINE_SIZE, new)
            assert data == bytes([block]) * 64

    def test_skip_block_left_under_old_counter(self, engine):
        old, new = self._overflow_setup(engine)
        engine.reencrypt_page(0, old, new, skip_block=7)
        # Block 7 still authenticates under its OLD pair only.
        data = engine.read_data_block(7 * CACHE_LINE_SIZE, old)
        assert data == bytes([7]) * 64
        with pytest.raises(IntegrityError):
            engine.read_data_block(7 * CACHE_LINE_SIZE, new)

    def test_reencryption_statistic(self, engine):
        old, new = self._overflow_setup(engine)
        engine.reencrypt_page(0, old, new, skip_block=7)
        assert engine.stats.counter("page_reencryptions").value == 1

    def test_reencryption_write_traffic(self, engine):
        old, new = self._overflow_setup(engine)
        before = engine.nvm.total_writes
        engine.reencrypt_page(0, old, new, skip_block=0)
        # 63 data lines + 63 HMAC-line merges.
        assert engine.nvm.total_writes - before == 2 * (BLOCKS_PER_PAGE - 1)
