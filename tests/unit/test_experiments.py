"""Unit tests for the experiment drivers (tiny scales — the full-scale
runs live in benchmarks/)."""

import pytest

from repro.analysis import experiments
from repro.analysis.report import FigureTable, SensitivitySeries


pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def tiny_comparisons():
    return experiments.figure5_comparisons(
        length=400, seed=2, workloads=["hmmer", "namd"]
    )


class TestFigure5Drivers:
    def test_comparisons_cover_requested_workloads(self, tiny_comparisons):
        assert set(tiny_comparisons) == {"hmmer", "namd"}
        for cmp in tiny_comparisons.values():
            assert set(cmp.results) == {
                "no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"
            }

    def test_figure5a_reuses_comparisons(self, tiny_comparisons):
        table = experiments.figure5a(tiny_comparisons)
        assert isinstance(table, FigureTable)
        assert set(table.rows) == {"hmmer", "namd"}

    def test_figure5b_reuses_comparisons(self, tiny_comparisons):
        table = experiments.figure5b(tiny_comparisons)
        assert all(v >= 1.0 or abs(v - 1.0) < 0.2 for v in table.column("sc"))

    def test_headline_from_comparisons(self, tiny_comparisons):
        numbers = experiments.headline(tiny_comparisons)
        assert numbers.sc_write_amplification > 1.0


class TestSensitivityDrivers:
    def test_figure6a_series_structure(self):
        series = experiments.figure6a(
            values=[4, 64], length=300, workloads=["hmmer"], schemes=["ccnvm"]
        )
        assert isinstance(series, SensitivitySeries)
        assert [v for v, _ in series.series("ccnvm", "ipc")] == [4, 64]
        assert series.parameter == "N"

    def test_figure6b_series_structure(self):
        series = experiments.figure6b(
            values=[32, 64], length=300, workloads=["hmmer"], schemes=["ccnvm"]
        )
        assert [v for v, _ in series.series("ccnvm", "writes")] == [32, 64]
        assert series.parameter == "M"

    def test_motivation_returns_pair(self):
        loss, amplification = experiments.motivation(length=300)
        assert 0.0 <= loss < 1.0
        assert amplification > 1.0


class TestAblationDriver:
    def test_ablation_fields(self):
        results = experiments.deferred_spreading_ablation(
            length=400, workloads=["hmmer"]
        )
        row = results["hmmer"]
        assert set(row) == {
            "hmacs_with_ds", "hmacs_without_ds", "hmac_savings", "ipc_gain"
        }
        assert row["hmacs_with_ds"] <= row["hmacs_without_ds"]
