"""Unit tests for CSV/JSON export and ASCII bar rendering."""

import csv
import io
import json

from repro.analysis.export import (
    ascii_bars,
    series_to_csv,
    series_to_json,
    table_to_csv,
    table_to_json,
)
from repro.analysis.report import FigureTable, SensitivitySeries


def sample_table():
    table = FigureTable("Figure X", ["sc", "ccnvm"])
    table.add_row("alpha", {"sc": 0.6, "ccnvm": 0.8})
    table.add_row("beta", {"sc": 0.5, "ccnvm": 0.9})
    return table


def sample_series():
    series = SensitivitySeries("Figure Y", "N")
    series.add_point(4, "ccnvm", ipc=0.7, writes=1.5)
    series.add_point(16, "ccnvm", ipc=0.8, writes=1.3)
    return series


class TestCsv:
    def test_table_csv_round_trips(self):
        rows = list(csv.reader(io.StringIO(table_to_csv(sample_table()))))
        assert rows[0] == ["workload", "sc", "ccnvm"]
        assert rows[1][0] == "alpha"
        assert float(rows[1][1]) == 0.6
        assert rows[-1][0] == "average"

    def test_series_csv_round_trips(self):
        rows = list(csv.reader(io.StringIO(series_to_csv(sample_series()))))
        assert rows[0] == ["N", "scheme", "normalized_ipc", "normalized_writes"]
        assert rows[1] == ["4", "ccnvm", "0.700000", "1.500000"]
        assert len(rows) == 3


class TestJson:
    def test_table_json_structure(self):
        doc = json.loads(table_to_json(sample_table()))
        assert doc["title"] == "Figure X"
        assert doc["rows"]["beta"]["ccnvm"] == 0.9
        assert doc["labels"]["ccnvm"] == "cc-NVM"
        assert "averages" in doc

    def test_series_json_structure(self):
        doc = json.loads(series_to_json(sample_series()))
        assert doc["parameter"] == "N"
        assert doc["points"]["16"]["ccnvm"]["writes"] == 1.3


class TestAsciiBars:
    def test_bars_scale_to_ceiling(self):
        text = ascii_bars(sample_table(), width=10, ceiling=1.0)
        lines = text.splitlines()
        ccnvm_beta = [l for l in lines if "cc-NVM" in l][-1]
        assert "#########." in ccnvm_beta  # 0.9 of 10 chars
        assert "0.90" in ccnvm_beta

    def test_bars_default_ceiling_is_max(self):
        text = ascii_bars(sample_table(), width=10)
        ccnvm_beta = [l for l in text.splitlines() if "cc-NVM" in l][-1]
        assert "##########" in ccnvm_beta  # the max fills the bar

    def test_every_workload_rendered(self):
        text = ascii_bars(sample_table())
        assert "alpha:" in text
        assert "beta:" in text


def sample_result(scheme="ccnvm", ipc=0.9):
    from repro.sim.runner import SimulationResult

    return SimulationResult(
        scheme=scheme,
        workload="lbm",
        instructions=1000,
        cycles=2000,
        ipc=ipc,
        nvm_writes=300,
        nvm_reads=120,
        writes_by_region={"data": 200, "counter": 100},
        llc_writebacks=180,
        epochs=7,
        drains_by_trigger={"update_limit": 5, "queue_full": 2},
        counter_hmacs=42,
        data_hmacs=17,
        stats={"meta.hits": 12.0},
    )


class TestResultRoundTrip:
    def test_dict_round_trip_is_exact(self):
        from repro.analysis.export import result_from_dict, result_to_dict

        result = sample_result()
        clone = result_from_dict(result_to_dict(result))
        assert clone == result

    def test_json_round_trip_is_exact_and_stable(self):
        from repro.analysis.export import result_from_json, result_to_json

        result = sample_result()
        text = result_to_json(result)
        assert result_from_json(text) == result
        # canonical: serializing again yields identical bytes
        assert result_to_json(result_from_json(text)) == text

    def test_unknown_fields_are_rejected(self):
        import pytest

        from repro.analysis.export import result_from_dict, result_to_dict

        data = result_to_dict(sample_result())
        data["quantum_flux"] = 1
        with pytest.raises(ValueError, match="quantum_flux"):
            result_from_dict(data)


class TestFig5BenchArtifact:
    def test_artifact_structure(self):
        from repro.analysis.export import fig5_bench_to_json, result_from_dict
        from repro.sim.runner import DesignComparison

        results = {
            "no_cc": sample_result("no_cc", ipc=1.0),
            "sc": sample_result("sc", ipc=0.5),
            "osiris_plus": sample_result("osiris_plus", ipc=0.7),
            "ccnvm_no_ds": sample_result("ccnvm_no_ds", ipc=0.75),
            "ccnvm": sample_result("ccnvm", ipc=0.9),
        }
        comparisons = {"lbm": DesignComparison("lbm", results)}
        doc = json.loads(
            fig5_bench_to_json(comparisons, {"length": 4000, "jobs": 2})
        )
        assert doc["benchmark"] == "fig5"
        assert doc["workloads"] == ["lbm"]
        assert doc["run"] == {"length": 4000, "jobs": 2}
        assert doc["fig5a_ipc"]["rows"]["lbm"]["ccnvm"] == 0.9
        assert "ccnvm_ipc_gain_over_osiris" in doc["headline"]
        # per-cell payloads round-trip back into live results
        rebuilt = result_from_dict(doc["results"]["lbm"]["ccnvm"])
        assert rebuilt == results["ccnvm"]

    def test_from_json_round_trips_and_validates(self):
        import pytest

        from repro.analysis.export import fig5_bench_from_json, fig5_bench_to_json
        from repro.sim.runner import DesignComparison

        results = {
            "no_cc": sample_result("no_cc", ipc=1.0),
            "sc": sample_result("sc", ipc=0.5),
            "osiris_plus": sample_result("osiris_plus", ipc=0.7),
            "ccnvm_no_ds": sample_result("ccnvm_no_ds", ipc=0.75),
            "ccnvm": sample_result("ccnvm", ipc=0.9),
        }
        comparisons = {"lbm": DesignComparison("lbm", results)}
        text = fig5_bench_to_json(comparisons, {"length": 4000})
        rebuilt = fig5_bench_from_json(text)
        assert rebuilt["lbm"]["ccnvm"] == results["ccnvm"]
        # A document whose derived sections disagree with its raw cells
        # is rejected rather than trusted.
        doc = json.loads(text)
        doc["headline"]["ccnvm_ipc_gain_over_osiris"] += 0.5
        with pytest.raises(ValueError, match="headline"):
            fig5_bench_from_json(json.dumps(doc))
        with pytest.raises(ValueError, match="not a fig5"):
            fig5_bench_from_json(json.dumps({"benchmark": "fig6"}))

    def test_from_json_is_insensitive_to_json_key_sorting(self):
        # The document's table averages sum floats in workload order;
        # the serializer sorts keys alphabetically.  Values are chosen
        # so that summing in document order (0.193 + 0.358 + 0.668) and
        # in sorted gcc/lbm/soplex order (0.358 + 0.668 + 0.193) differ
        # in the last bits — the round trip must follow the recorded
        # workload order, not JSON key order.
        import pytest

        from repro.analysis.export import fig5_bench_from_json, fig5_bench_to_json
        from repro.sim.runner import DesignComparison

        ipcs = {"soplex": 0.193, "gcc": 0.358, "lbm": 0.668}
        assert 0.193 + 0.358 + 0.668 != 0.358 + 0.668 + 0.193
        comparisons = {
            workload: DesignComparison(workload, {
                scheme: sample_result(
                    scheme, ipc=1.0 if scheme == "no_cc" else ipc
                )
                for scheme in ("no_cc", "sc", "osiris_plus",
                               "ccnvm_no_ds", "ccnvm")
            })
            for workload, ipc in ipcs.items()
        }
        text = fig5_bench_to_json(comparisons, {})
        rebuilt = fig5_bench_from_json(text)
        assert list(rebuilt) == ["soplex", "gcc", "lbm"]

        # A document whose workload list disagrees with its cells is
        # rejected (it would make the order reconstruction meaningless).
        doc = json.loads(text)
        doc["workloads"] = ["soplex", "gcc"]
        with pytest.raises(ValueError, match="workloads"):
            fig5_bench_from_json(json.dumps(doc))


class TestLintJson:
    def test_lint_report_round_trips(self, tmp_path):
        from repro.analysis.export import lint_to_json
        from repro.lint import LintConfig, run_lint

        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "evil.py").write_text(
            '@persistence(persistent=("r",), aka=("t",))\n'
            "class Owner:\n"
            "    pass\n"
            "\n"
            "def smash(t):\n"
            "    t.r = 1\n",
            encoding="utf-8",
        )
        report = run_lint(LintConfig(root=pkg, base_dir=tmp_path))
        doc = json.loads(lint_to_json(report))
        assert doc["schema_version"] == 1
        assert doc["counts"]["new"] == 1
        [finding] = doc["findings"]
        assert finding["rule"] == "P1"
        assert finding["path"] == "pkg/evil.py"
        assert finding["key"] == "P1|pkg/evil.py|smash|t.r"

    def test_lint_from_json_inverts_lint_to_json(self, tmp_path):
        from repro.analysis.export import lint_from_json, lint_to_json
        from repro.lint import LintConfig, run_lint

        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "evil.py").write_text(
            '@persistence(persistent=("r",), aka=("t",))\n'
            "class Owner:\n"
            "    pass\n"
            "\n"
            "def smash(t):\n"
            "    t.r = 1\n",
            encoding="utf-8",
        )
        report = run_lint(LintConfig(root=pkg, base_dir=tmp_path))
        text = lint_to_json(report)
        rebuilt = lint_from_json(text)
        assert lint_to_json(rebuilt) == text
        assert [f.key for f in rebuilt.new] == [f.key for f in report.new]

    def test_lint_from_json_rejects_wrong_schema(self):
        import pytest

        from repro.analysis.export import lint_from_json

        with pytest.raises(ValueError, match="schema"):
            lint_from_json(json.dumps({"schema_version": 0}))
