"""Unit tests for CSV/JSON export and ASCII bar rendering."""

import csv
import io
import json

from repro.analysis.export import (
    ascii_bars,
    series_to_csv,
    series_to_json,
    table_to_csv,
    table_to_json,
)
from repro.analysis.report import FigureTable, SensitivitySeries


def sample_table():
    table = FigureTable("Figure X", ["sc", "ccnvm"])
    table.add_row("alpha", {"sc": 0.6, "ccnvm": 0.8})
    table.add_row("beta", {"sc": 0.5, "ccnvm": 0.9})
    return table


def sample_series():
    series = SensitivitySeries("Figure Y", "N")
    series.add_point(4, "ccnvm", ipc=0.7, writes=1.5)
    series.add_point(16, "ccnvm", ipc=0.8, writes=1.3)
    return series


class TestCsv:
    def test_table_csv_round_trips(self):
        rows = list(csv.reader(io.StringIO(table_to_csv(sample_table()))))
        assert rows[0] == ["workload", "sc", "ccnvm"]
        assert rows[1][0] == "alpha"
        assert float(rows[1][1]) == 0.6
        assert rows[-1][0] == "average"

    def test_series_csv_round_trips(self):
        rows = list(csv.reader(io.StringIO(series_to_csv(sample_series()))))
        assert rows[0] == ["N", "scheme", "normalized_ipc", "normalized_writes"]
        assert rows[1] == ["4", "ccnvm", "0.700000", "1.500000"]
        assert len(rows) == 3


class TestJson:
    def test_table_json_structure(self):
        doc = json.loads(table_to_json(sample_table()))
        assert doc["title"] == "Figure X"
        assert doc["rows"]["beta"]["ccnvm"] == 0.9
        assert doc["labels"]["ccnvm"] == "cc-NVM"
        assert "averages" in doc

    def test_series_json_structure(self):
        doc = json.loads(series_to_json(sample_series()))
        assert doc["parameter"] == "N"
        assert doc["points"]["16"]["ccnvm"]["writes"] == 1.3


class TestAsciiBars:
    def test_bars_scale_to_ceiling(self):
        text = ascii_bars(sample_table(), width=10, ceiling=1.0)
        lines = text.splitlines()
        ccnvm_beta = [l for l in lines if "cc-NVM" in l][-1]
        assert "#########." in ccnvm_beta  # 0.9 of 10 chars
        assert "0.90" in ccnvm_beta

    def test_bars_default_ceiling_is_max(self):
        text = ascii_bars(sample_table(), width=10)
        ccnvm_beta = [l for l in text.splitlines() if "cc-NVM" in l][-1]
        assert "##########" in ccnvm_beta  # the max fills the bar

    def test_every_workload_rendered(self):
        text = ascii_bars(sample_table())
        assert "alpha:" in text
        assert "beta:" in text


class TestLintJson:
    def test_lint_report_round_trips(self, tmp_path):
        from repro.analysis.export import lint_to_json
        from repro.lint import LintConfig, run_lint

        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "evil.py").write_text(
            '@persistence(persistent=("r",), aka=("t",))\n'
            "class Owner:\n"
            "    pass\n"
            "\n"
            "def smash(t):\n"
            "    t.r = 1\n",
            encoding="utf-8",
        )
        report = run_lint(LintConfig(root=pkg, base_dir=tmp_path))
        doc = json.loads(lint_to_json(report))
        assert doc["counts"]["new"] == 1
        [finding] = doc["findings"]
        assert finding["rule"] == "P1"
        assert finding["path"] == "pkg/evil.py"
        assert finding["key"] == "P1|pkg/evil.py|smash|t.r"
