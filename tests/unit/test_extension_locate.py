"""Tests for the Section 4.4 extension: persistent locate registers.

The paper closes Section 4.4 with: "adding more persistent registers to
record all the dirty counter addresses in dirty address queue, and the
update times of each dirty counter cache can help us to locate the
tempered data blocks, with the cost of higher hardware requirements."
``ccnvm_locate`` implements exactly that; these tests pin its semantics.
"""

import pytest

from repro.core.attacks import Attacker
from repro.core.schemes import SCHEME_LABELS, create_scheme
from tests.conftest import SMALL_CAPACITY, payload


@pytest.fixture
def scheme(config):
    return create_scheme("ccnvm_locate", config, SMALL_CAPACITY, seed=4)


class TestRegisterMaintenance:
    def test_log_counts_updates_per_counter_line(self, scheme):
        scheme.writeback(0, 0x1000, payload(1))
        scheme.writeback(500, 0x1000 + 64, payload(2))  # same page
        scheme.writeback(1000, 0x5000, payload(3))  # another page
        log = scheme.tcb.counter_log
        assert log[scheme.layout.counter_line_addr(0x1000)] == 2
        assert log[scheme.layout.counter_line_addr(0x5000)] == 1

    def test_log_cleared_on_commit(self, scheme):
        scheme.writeback(0, 0x1000, payload(1))
        scheme.flush()
        assert scheme.tcb.counter_log == {}

    def test_log_bounded_by_queue_occupancy(self, scheme):
        t = 0
        for i in range(60):
            scheme.writeback(t, (i % 9) * 4096, payload(i))
            t += 500
        # Only counter lines (not internal nodes) are logged, and only
        # those dirty in the open epoch.
        assert len(scheme.tcb.counter_log) <= len(scheme.queue)

    def test_log_survives_crash(self, scheme):
        scheme.writeback(0, 0x1000, payload(1))
        before = dict(scheme.tcb.counter_log)
        scheme.crash()
        assert scheme.tcb.counter_log == before

    def test_baseline_ccnvm_never_logs(self, config):
        plain = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=4)
        plain.writeback(0, 0x1000, payload(1))
        assert plain.tcb.counter_log == {}


class TestReplayLocation:
    def _attack(self, scheme):
        """Committed base state, one in-epoch write, rolled back."""
        scheme.writeback(0, 0x2000, payload(1))
        scheme.flush()
        attacker = Attacker(scheme.nvm)
        snapshot = attacker.record()
        scheme.writeback(1000, 0x2000, payload(2))
        scheme.writeback(1500, 0x8000, payload(3))  # innocent neighbour
        scheme.crash()
        attacker.replay_data(snapshot, 0x2000)
        return scheme.recover()

    def test_in_epoch_replay_located_at_page(self, scheme):
        report = self._attack(scheme)
        assert report.potential_replay_detected
        located = [f for f in report.findings if f.kind == "replay_located"]
        assert [f.address for f in located] == [0x2000]
        assert located[0].node is not None

    def test_innocent_pages_not_flagged(self, scheme):
        report = self._attack(scheme)
        assert not any(f.address == 0x8000 for f in report.findings)

    def test_clean_crash_raises_no_findings(self, scheme):
        scheme.writeback(0, 0x2000, payload(1))
        scheme.writeback(500, 0x6000, payload(2))
        scheme.crash()
        report = scheme.recover()
        assert report.success
        assert report.clean

    def test_plain_ccnvm_cannot_locate_same_attack(self, config):
        plain = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=4)
        report = TestReplayLocation._attack(self, plain)
        assert report.potential_replay_detected
        assert not any(f.kind == "replay_located" for f in report.findings)

    def test_spoof_still_located_by_block(self, scheme):
        scheme.writeback(0, 0x2000, payload(1))
        Attacker(scheme.nvm).spoof_data(0x2000)
        scheme.crash()
        report = scheme.recover()
        assert any(
            f.kind == "data_tampering" and f.address == 0x2000
            for f in report.findings
        )


class TestRegistration:
    def test_registered_and_labelled(self):
        assert SCHEME_LABELS["ccnvm_locate"] == "cc-NVM + locate registers"

    def test_behaves_like_ccnvm_otherwise(self, config):
        """Same traffic and timing as the base design: the extension
        costs registers, not bandwidth."""
        import random

        results = {}
        for name in ("ccnvm", "ccnvm_locate"):
            s = create_scheme(name, config, SMALL_CAPACITY, seed=6)
            rng = random.Random(1)
            t = 0
            for i in range(200):
                s.writeback(t, rng.randrange(30) * 4096, payload(i))
                t += 400
            s.flush()
            results[name] = (s.nvm.total_writes, s.hmac.counter_hmac_count)
        assert results["ccnvm"] == results["ccnvm_locate"]
