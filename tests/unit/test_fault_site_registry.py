"""Drift test: fault-site strings in the source tree must equal the
faults/plan.py registry, in both directions.

Deliberately independent of ``repro.lint`` (its own 20-line AST walk),
so a bug in the analyzer's model cannot mask registry drift.
"""

import ast
from pathlib import Path

import repro
from repro.faults.plan import ALL_SITE_NAMES

SRC = Path(repro.__file__).resolve().parent
FAULT_CALLS = ("_fault", "fault_hook")


def called_sites() -> set[str]:
    sites = set()
    for path in sorted(SRC.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else getattr(
                func, "id", None
            )
            if name in FAULT_CALLS and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    sites.add(arg.value)
    return sites


def test_every_called_site_is_registered():
    unregistered = called_sites() - set(ALL_SITE_NAMES)
    assert not unregistered, (
        f"fault sites called in code but missing from faults/plan.py: "
        f"{sorted(unregistered)}"
    )


def test_every_registered_site_is_called():
    unused = set(ALL_SITE_NAMES) - called_sites()
    assert not unused, (
        f"fault sites registered in faults/plan.py but never called: "
        f"{sorted(unused)}"
    )


def test_site_names_are_component_dot_step():
    for name in ALL_SITE_NAMES:
        component, _, step = name.partition(".")
        assert component and step, f"malformed site name {name!r}"
