"""Unit tests for the fault injector and the hard crash edges it arms.

The edges the paper's protocol lives or dies on: a power failure with an
empty vs. a full (un-ended) atomic batch, dropping the volatile dirty
address queue and starting a fresh epoch, and a second crash landing in
the middle of recovery itself.
"""

import pytest

from repro.common.constants import CACHE_LINE_SIZE
from repro.core.schemes import create_scheme
from repro.faults import (
    ALL_SITE_NAMES,
    RECOVERY_SITES,
    SITES,
    FaultInjector,
    PowerFailure,
    sites_for_scheme,
)
from repro.mem.nvm import NVMDevice
from repro.mem.wpq import WritePendingQueue
from repro.metadata.layout import MemoryLayout

from tests.conftest import TINY_CAPACITY, payload

LINE = bytes([0x5A]) * CACHE_LINE_SIZE


class TestInjectorMechanics:
    def test_arming_unknown_site_rejected(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="unknown fault site"):
            injector.arm("writeback.no_such_step")
        with pytest.raises(ValueError, match="1-based"):
            injector.arm("writeback.after_data", hit=0)

    def test_discovery_counts_without_firing(self):
        injector = FaultInjector()
        for _ in range(3):
            injector("wpq.mid_batch")
        assert injector.hits["wpq.mid_batch"] == 3
        assert injector.fired == 0

    def test_fires_at_exact_hit_then_disarms(self):
        injector = FaultInjector()
        injector.arm("wpq.mid_batch", hit=2)
        injector("wpq.mid_batch")  # visit 1: no crash
        with pytest.raises(PowerFailure) as exc:
            injector("wpq.mid_batch")
        assert exc.value.site == "wpq.mid_batch"
        # Disarmed: further visits (e.g. during recovery) pass through.
        injector("wpq.mid_batch")
        assert injector.armed is None
        assert injector.fired == 1

    def test_rearming_while_armed_rejected(self):
        injector = FaultInjector()
        injector.arm("wpq.mid_batch")
        with pytest.raises(RuntimeError, match="already armed at 'wpq.mid_batch'"):
            injector.arm("wpq.before_end")
        # The original crash is untouched by the failed re-arm...
        assert injector.armed == "wpq.mid_batch"
        # ...and an explicit disarm makes re-arming legal again.
        injector.disarm()
        injector.arm("wpq.before_end")
        assert injector.armed == "wpq.before_end"

    def test_schedule_arms_next_site_after_each_fire(self):
        injector = FaultInjector()
        injector.arm_schedule([("wpq.mid_batch", 2), ("wpq.before_end", 1)])
        injector("wpq.mid_batch")  # visit 1: below the hit threshold
        with pytest.raises(PowerFailure):
            injector("wpq.mid_batch")
        # The schedule auto-armed the next pair with a fresh visit count.
        assert injector.armed == "wpq.before_end"
        with pytest.raises(PowerFailure):
            injector("wpq.before_end")
        assert injector.armed is None
        assert injector.fired == 2

    def test_schedule_validates_every_pair_up_front(self):
        injector = FaultInjector()
        with pytest.raises(ValueError, match="unknown fault site"):
            injector.arm_schedule([("wpq.mid_batch", 1), ("bogus.site", 1)])
        assert injector.armed is None
        with pytest.raises(ValueError, match="empty schedule"):
            injector.arm_schedule([])

    def test_disarm_clears_pending_schedule(self):
        injector = FaultInjector()
        injector.arm_schedule([("wpq.mid_batch", 1), ("wpq.before_end", 1)])
        injector.disarm()
        injector("wpq.mid_batch")  # nothing armed: pure discovery counting
        injector("wpq.before_end")
        assert injector.fired == 0

    def test_registry_covers_every_scheme(self):
        assert len(SITES) == len(ALL_SITE_NAMES) == 16
        assert sites_for_scheme("osiris_plus").count("writeback.after_stoploss") == 1
        assert "writeback.after_stoploss" not in sites_for_scheme("ccnvm")
        assert RECOVERY_SITES == {
            "recovery.after_counters",
            "recovery.mid_rebuild",
            "recovery.before_root_set",
        }
        # The epoch-protocol sites exist only for the cc-NVM variants.
        assert "daq.after_reserve" in sites_for_scheme("ccnvm")
        assert "daq.after_reserve" not in sites_for_scheme("sc")
        assert sites_for_scheme("no_cc") == (
            "writeback.before_data", "writeback.after_data",
            "recovery.after_counters", "recovery.mid_rebuild",
            "recovery.before_root_set",
        )


class TestWPQCrashEdges:
    """ADR resolution with an empty vs. a full un-ended batch."""

    @pytest.fixture
    def wpq(self):
        nvm = NVMDevice(MemoryLayout(1 << 20))
        return WritePendingQueue(nvm, entries=8)

    def test_power_failure_outside_batch_drops_nothing(self, wpq):
        wpq.write(0, LINE)
        assert wpq.power_failure() == 0
        assert wpq.nvm.peek(0) == LINE  # normal writes were already durable

    def test_power_failure_with_empty_open_batch(self, wpq):
        wpq.begin_atomic()
        assert wpq.power_failure() == 0
        assert not wpq.in_atomic_batch  # crash resolved the open batch

    def test_power_failure_drops_full_batch_wholesale(self, wpq):
        wpq.write(0, LINE)
        wpq.begin_atomic()
        for i in range(1, 4):
            wpq.write_atomic(i * 64, LINE)
        assert wpq.power_failure() == 3
        assert not wpq.in_atomic_batch
        assert wpq.nvm.peek(0) == LINE
        for i in range(1, 4):
            assert wpq.nvm.peek(i * 64) == bytes(CACHE_LINE_SIZE)
        assert wpq.stats.counter("batches_dropped").value == 1

    def test_injected_crash_before_end_drops_batch(self, wpq):
        injector = FaultInjector()
        wpq.fault_hook = injector
        injector.arm("wpq.before_end")
        wpq.begin_atomic()
        wpq.write_atomic(64, LINE)
        with pytest.raises(PowerFailure):
            wpq.commit_atomic()
        assert wpq.power_failure() == 1
        assert wpq.nvm.peek(64) == bytes(CACHE_LINE_SIZE)

    def test_injected_crash_after_end_keeps_batch(self, wpq):
        injector = FaultInjector()
        wpq.fault_hook = injector
        injector.arm("wpq.after_end")
        wpq.begin_atomic()
        wpq.write_atomic(64, LINE)
        with pytest.raises(PowerFailure):
            wpq.commit_atomic()
        # ADR: the end signal was given, so the batch is already in NVM.
        assert wpq.power_failure() == 0
        assert wpq.nvm.peek(64) == LINE


class TestDirtyQueueCrashEdges:
    """The volatile DAQ is dropped on crash and a fresh epoch begins."""

    def test_daq_dropped_and_new_epoch_opens(self):
        scheme = create_scheme("ccnvm", data_capacity=TINY_CAPACITY)
        injector = FaultInjector()
        injector.attach(scheme)
        for i in range(4):
            scheme.writeback(i * 1000, 0x2000 + i * 64, payload(i))
        assert len(scheme.queue) > 0
        root_before = scheme.tcb.root_old

        injector.arm("daq.after_reserve")
        with pytest.raises(PowerFailure):
            scheme.writeback(5000, 0x2100, payload(9))
        scheme.crash()
        assert len(scheme.queue) == 0  # volatile queue lost with power
        assert scheme.tcb.root_old == root_before  # epoch never committed

        report = scheme.recover()
        assert report.success
        # The next epoch starts from scratch and can commit: push one
        # block past the update-times limit to force a drain.
        limit = scheme.config.epoch.update_limit
        t = 10_000
        for i in range(limit + 1):
            scheme.writeback(t, 0x2000, payload(50 + i))
            t += 1000
        assert scheme.tcb.root_old != root_before
        assert scheme.tcb.root_old == scheme.tcb.root_new

    def test_crash_mid_drain_drops_queue_and_recovers(self):
        scheme = create_scheme("ccnvm", data_capacity=TINY_CAPACITY)
        injector = FaultInjector()
        injector.attach(scheme)
        injector.arm("daq.before_commit")
        limit = scheme.config.epoch.update_limit
        t = 0
        with pytest.raises(PowerFailure):
            for i in range(limit + 1):
                scheme.writeback(t, 0x2000, payload(i))
                t += 1000
        scheme.crash()
        report = scheme.recover()
        assert report.success
        got, _ = scheme.read(t + 10_000, 0x2000)
        assert got in (payload(limit - 1), payload(limit))  # last or in-flight


class TestDoubleCrash:
    """A second power failure in the middle of recovery must be survivable."""

    @pytest.mark.parametrize("site", sorted(RECOVERY_SITES))
    def test_crash_during_recovery_is_restartable(self, site):
        scheme = create_scheme("ccnvm", data_capacity=TINY_CAPACITY)
        injector = FaultInjector()
        injector.attach(scheme)
        t = 0
        for i in range(6):
            scheme.writeback(t, 0x3000 + (i % 3) * 64, payload(i))
            t += 1000
        scheme.crash()

        injector.arm(site, hit=1)
        with pytest.raises(PowerFailure):
            scheme.recover()
        assert scheme.tcb.recovery_pending  # persisted across the crash
        scheme.crash()

        report = scheme.recover()
        assert report.success
        assert not scheme.tcb.recovery_pending
        assert scheme.tcb.root_old == scheme.tcb.root_new
        assert any("resumed" in note for note in report.notes)
        for i in range(3):
            got, _ = scheme.read(t + i * 1000, 0x3000 + i * 64)
            assert got == payload(3 + i)  # the last value written per block
