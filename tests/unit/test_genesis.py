"""Unit tests for the lazy genesis (format-time) image."""

import pytest

from repro.common.constants import CACHE_LINE_SIZE, HMAC_SIZE
from repro.crypto.cme import CounterModeCipher
from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey
from repro.metadata.counters import zero_counter_line
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout


ENC = SecretKey.from_seed("genesis-enc")
MAC = SecretKey.from_seed("genesis-mac")


@pytest.fixture
def genesis():
    return GenesisImage(MemoryLayout(1 << 20), ENC, MAC)


class TestDataRegion:
    def test_data_line_is_encrypted_zero(self, genesis):
        cipher = CounterModeCipher(ENC)
        expected = cipher.encrypt(bytes(CACHE_LINE_SIZE), 0x40, 0, 0)
        assert genesis.data_line(0x40) == expected

    def test_data_lines_differ_by_address(self, genesis):
        assert genesis.data_line(0) != genesis.data_line(64)

    def test_data_hmac_matches_runtime_engine(self, genesis):
        # Recovery recomputes data HMACs with a runtime engine; the
        # genesis codes must verify under it.
        engine = HmacEngine(MAC)
        expected = engine.data_hmac(genesis.data_line(0x80), 0x80, 0, 0)
        assert genesis.data_hmac(0x80) == expected

    def test_hmac_line_packs_four_codes(self, genesis):
        layout = genesis.layout
        line_addr, _ = layout.data_hmac_location(0)
        line = genesis.hmac_line(line_addr)
        assert len(line) == CACHE_LINE_SIZE
        for i in range(4):
            assert (
                line[i * HMAC_SIZE:(i + 1) * HMAC_SIZE]
                == genesis.data_hmac(i * CACHE_LINE_SIZE)
            )


class TestTreeDefaults:
    def test_level0_is_zero_counter_line(self, genesis):
        assert genesis.node(0) == zero_counter_line()

    def test_level_nodes_pack_child_hmac(self, genesis):
        node1 = genesis.node(1)
        assert node1 == genesis.node_hmac(0) * 4

    def test_levels_differ(self, genesis):
        assert genesis.node(1) != genesis.node(2)
        assert genesis.node_hmac(1) != genesis.node_hmac(2)

    def test_node_values_cached(self, genesis):
        assert genesis.node(2) is genesis.node(2)

    def test_root_register_is_top_level_node(self, genesis):
        assert genesis.root_register() == genesis.node(genesis.layout.root_level)


class TestLineDispatch:
    def test_dispatch_by_region(self, genesis):
        layout = genesis.layout
        assert genesis.line(0) == genesis.data_line(0)
        assert genesis.line(layout.counter_base) == zero_counter_line()
        assert genesis.line(layout.hmac_base) == genesis.hmac_line(layout.hmac_base)
        assert genesis.line(layout.merkle_base) == genesis.node(1)

    def test_every_line_is_line_sized(self, genesis):
        layout = genesis.layout
        for addr in (0, layout.counter_base, layout.hmac_base, layout.merkle_base):
            assert len(genesis.line(addr)) == CACHE_LINE_SIZE

    def test_format_work_does_not_touch_runtime_stats(self):
        layout = MemoryLayout(1 << 20)
        genesis = GenesisImage(layout, ENC, MAC)
        genesis.node_hmac(2)
        genesis.data_hmac(0)
        runtime = HmacEngine(MAC)
        assert runtime.data_hmac_count == 0
        assert runtime.counter_hmac_count == 0


class TestConsistencyWithVerification:
    def test_genesis_tree_verifies_bottom_up(self, genesis):
        """Every genesis node's HMAC equals the slot its parent stores."""
        engine = HmacEngine(MAC)
        layout = genesis.layout
        for level in range(layout.root_level):
            child_hmac = engine.counter_hmac(genesis.node(level))
            parent = genesis.node(level + 1)
            assert parent[:HMAC_SIZE] == child_hmac
