"""Property-style fuzz: a journal torn at *every* byte offset of its
last record still resumes cleanly with all prior records intact.

This is the host-stack analogue of the torn-write discipline the
modeled NVM enforces: the tail of the durable log may be arbitrary
garbage after a crash, and recovery must land on exactly the prefix of
fully-written records — never fewer, never a partial one.
"""

import json

import pytest

from repro.chaos.inject import install, reset
from repro.chaos.plan import CHAOS_PLAN_ENV, ChaosPlan
from repro.runs.journal import RunJournal
from repro.runs.spec import simulation_spec

FINGERPRINT = "test-fingerprint"


@pytest.fixture(autouse=True)
def clean_injector(monkeypatch):
    monkeypatch.delenv(CHAOS_PLAN_ENV, raising=False)
    reset()
    yield
    reset()


def build_journal(path, n=3):
    """A journal of *n* records; returns (specs, full bytes, tail length)."""
    specs = [
        simulation_spec("ccnvm", "lbm", 40, seed) for seed in range(1, n + 1)
    ]
    before_last = None
    with RunJournal(path, FINGERPRINT) as journal:
        for i, spec in enumerate(specs):
            if i == len(specs) - 1:
                before_last = path.stat().st_size
            journal.record(spec, "done", {"seed": spec.seed, "value": i})
    full = path.read_bytes()
    return specs, full, len(full) - before_last


class TestTornTailFuzz:
    def test_every_truncation_point_of_the_last_record(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs, full, tail_len = build_journal(path)
        intact_hashes = [s.spec_hash() for s in specs[:-1]]
        last_hash = specs[-1].spec_hash()

        # Cut the file after every byte of the last record, from "no
        # bytes of it landed" through "all but its newline landed".
        for torn in range(tail_len):
            path.write_bytes(full[: len(full) - tail_len + torn])
            with RunJournal(path, FINGERPRINT) as journal:
                # Prior records survive; the torn one reads as missing.
                assert journal.resumed == len(intact_hashes), torn
                for h in intact_hashes:
                    assert journal.completed(h) is not None, torn
                assert journal.completed(last_hash) is None, torn
                # The torn bytes were truncated away on open; re-append
                # and the record is whole again.
                journal.record(specs[-1], "done", {"seed": specs[-1].seed})
            lines = path.read_bytes().splitlines()
            assert len(lines) == 1 + len(specs), torn  # header + n records
            assert json.loads(lines[-1])["spec_hash"] == last_hash, torn

    def test_garbage_tail_is_dropped_not_parsed(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs, full, _ = build_journal(path)
        path.write_bytes(full + b'{"spec_hash": "zzz", not json')
        with RunJournal(path, FINGERPRINT) as journal:
            assert journal.resumed == len(specs)
            assert "zzz" not in journal.records
        # The next open sees a clean file (the garbage was truncated).
        assert path.read_bytes() == full

    def test_fingerprint_mismatch_restarts_the_file(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        build_journal(path)
        with RunJournal(path, "other-fingerprint") as journal:
            assert journal.resumed == 0 and journal.records == {}
        header = json.loads(path.read_bytes().splitlines()[0])
        assert header["fingerprint"] == "other-fingerprint"


class TestChaosRepair:
    def test_append_torn_truncates_back_and_raises(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs, full, _ = build_journal(path)
        extra = simulation_spec("ccnvm", "lbm", 40, 99)
        # Resuming skips the header append, so visit 1 of the site is
        # the first record append below.
        install(ChaosPlan(0, {"journal.append_torn": {"hits": [1]}}))
        with RunJournal(path, FINGERPRINT) as journal:
            with pytest.raises(OSError, match="torn append"):
                journal.record(extra, "done", {})
            # Disk-first: neither disk nor memory holds the record.
            assert extra.spec_hash() not in journal.records
            # The torn tail was truncated back inside the failed append;
            # a clean retry in the same session then lands whole.
            journal.record(extra, "done", {"ok": True})
        data = path.read_bytes()
        assert data.startswith(full)
        assert json.loads(data.splitlines()[-1])["spec_hash"] == extra.spec_hash()

    def test_fsync_fail_discards_the_record(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        specs, full, _ = build_journal(path)
        extra = simulation_spec("ccnvm", "lbm", 40, 99)
        install(ChaosPlan(0, {"journal.fsync_fail": {"hits": [1]}}))
        with RunJournal(path, FINGERPRINT) as journal:
            with pytest.raises(OSError, match="fsync"):
                journal.record(extra, "done", {})
            assert extra.spec_hash() not in journal.records
        assert path.read_bytes() == full
        # A fresh session resumes exactly the pre-failure records.
        reset()
        with RunJournal(path, FINGERPRINT) as journal:
            assert journal.resumed == len(specs)
