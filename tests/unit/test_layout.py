"""Unit tests for the NVM address map and Merkle geometry."""

import pytest

from repro.common.constants import CACHE_LINE_SIZE, PAGE_SIZE
from repro.metadata.layout import MemoryLayout, MerkleNodeId


SMALL = MemoryLayout(1 << 20)  # 1 MB data -> 256 pages
PAPER = MemoryLayout(16 << 30)  # the paper's 16 GB device


class TestConstruction:
    def test_rejects_unaligned_capacity(self):
        with pytest.raises(ValueError):
            MemoryLayout(PAGE_SIZE + 1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            MemoryLayout(0)

    def test_small_counts(self):
        assert SMALL.num_pages == 256
        assert SMALL.num_data_lines == 16384

    def test_regions_are_disjoint_and_ordered(self):
        assert SMALL.counter_base == SMALL.data_capacity
        assert SMALL.hmac_base > SMALL.counter_base
        assert SMALL.merkle_base > SMALL.hmac_base
        assert SMALL.total_capacity >= SMALL.merkle_base


class TestTreeGeometry:
    def test_small_level_counts(self):
        # 256 leaves -> 64 -> 16 -> 4 -> 1
        assert SMALL.level_counts == (256, 64, 16, 4, 1)
        assert SMALL.num_levels == 5
        assert SMALL.root_level == 4

    def test_paper_tree_has_12_levels(self):
        # Section 2.3: "12 layers for a 16 GB NVM with 128-bit HMAC".
        assert PAPER.num_levels == 12
        assert PAPER.level_counts[0] == (16 << 30) // PAGE_SIZE

    def test_paper_internal_path_is_10_nodes(self):
        # Section 5.2: "10 internal path nodes and the leaf-level counter".
        ancestors = PAPER.ancestors_of_leaf(12345)
        in_nvm = [n for n in ancestors if n.level < PAPER.root_level]
        assert len(in_nvm) == 10

    def test_parent_of_leaf(self):
        assert SMALL.parent_of(MerkleNodeId(0, 7)) == MerkleNodeId(1, 1)
        assert SMALL.parent_of(MerkleNodeId(0, 0)) == MerkleNodeId(1, 0)

    def test_parent_of_root_raises(self):
        with pytest.raises(ValueError):
            SMALL.parent_of(SMALL.root)

    def test_children_of_internal(self):
        kids = SMALL.children_of(MerkleNodeId(1, 2))
        assert kids == [MerkleNodeId(0, i) for i in (8, 9, 10, 11)]

    def test_children_of_leaf_empty(self):
        assert SMALL.children_of(MerkleNodeId(0, 5)) == []

    def test_children_of_root_cover_top_level(self):
        kids = SMALL.children_of(SMALL.root)
        assert kids == [MerkleNodeId(3, i) for i in range(4)]

    def test_parent_child_consistency(self):
        for level in range(1, SMALL.num_levels):
            for index in range(SMALL.level_counts[level]):
                node = MerkleNodeId(level, index)
                for child in SMALL.children_of(node):
                    assert SMALL.parent_of(child) == node

    def test_slot_in_parent(self):
        assert SMALL.slot_in_parent(MerkleNodeId(0, 0)) == 0
        assert SMALL.slot_in_parent(MerkleNodeId(0, 7)) == 3
        assert SMALL.slot_in_parent(MerkleNodeId(2, 9)) == 1

    def test_ancestors_bottom_up_ends_at_root(self):
        chain = SMALL.ancestors_of_leaf(100)
        assert [n.level for n in chain] == [1, 2, 3, 4]
        assert chain[-1] == SMALL.root

    def test_ancestors_out_of_range(self):
        with pytest.raises(ValueError):
            SMALL.ancestors_of_leaf(256)


class TestAddressMappings:
    def test_counter_line_addr_per_page(self):
        assert SMALL.counter_line_addr(0) == SMALL.counter_base
        assert SMALL.counter_line_addr(PAGE_SIZE - 1) == SMALL.counter_base
        assert (
            SMALL.counter_line_addr(PAGE_SIZE)
            == SMALL.counter_base + CACHE_LINE_SIZE
        )

    def test_counter_addr_roundtrip(self):
        for page in (0, 1, 100, 255):
            addr = SMALL.counter_line_addr(page * PAGE_SIZE)
            assert SMALL.leaf_index_of_counter_addr(addr) == page

    def test_leaf_index_matches_page(self):
        assert SMALL.counter_leaf_index(PAGE_SIZE * 3 + 64) == 3

    def test_block_slot(self):
        assert SMALL.block_slot(0) == 0
        assert SMALL.block_slot(64) == 1
        assert SMALL.block_slot(PAGE_SIZE - 1) == 63

    def test_data_hmac_locations_pack_four_per_line(self):
        line0, off0 = SMALL.data_hmac_location(0)
        line1, off1 = SMALL.data_hmac_location(64)
        line4, off4 = SMALL.data_hmac_location(4 * 64)
        assert line0 == line1
        assert off1 - off0 == 16
        assert line4 == line0 + CACHE_LINE_SIZE
        assert off4 == 0

    def test_data_hmac_region_bounds(self):
        last_line, _ = SMALL.data_hmac_location(SMALL.data_capacity - 1)
        assert SMALL.hmac_base <= last_line < SMALL.merkle_base

    def test_rejects_out_of_range_data_address(self):
        with pytest.raises(ValueError):
            SMALL.counter_line_addr(SMALL.data_capacity)

    def test_merkle_node_addr_roundtrip(self):
        for level in range(1, SMALL.root_level):
            for index in (0, SMALL.level_counts[level] - 1):
                node = MerkleNodeId(level, index)
                assert SMALL.node_of_addr(SMALL.merkle_node_addr(node)) == node

    def test_leaf_node_addr_is_counter_addr(self):
        node = MerkleNodeId(0, 9)
        assert SMALL.merkle_node_addr(node) == SMALL.counter_base + 9 * 64

    def test_root_has_no_nvm_address(self):
        with pytest.raises(ValueError):
            SMALL.merkle_node_addr(SMALL.root)

    def test_node_addresses_unique(self):
        seen = set()
        for level in range(0, SMALL.root_level):
            for index in range(SMALL.level_counts[level]):
                addr = SMALL.merkle_node_addr(MerkleNodeId(level, index))
                assert addr not in seen
                seen.add(addr)

    def test_region_classification(self):
        assert SMALL.region_of(0) == "data"
        assert SMALL.region_of(SMALL.data_capacity - 1) == "data"
        assert SMALL.region_of(SMALL.counter_base) == "counter"
        assert SMALL.region_of(SMALL.hmac_base) == "data_hmac"
        assert SMALL.region_of(SMALL.merkle_base) == "merkle"
        with pytest.raises(ValueError):
            SMALL.region_of(SMALL.total_capacity)

    def test_writeback_metadata_addresses(self):
        addrs = SMALL.metadata_addresses_for_writeback(PAGE_SIZE * 5 + 128)
        # counter line + internal ancestors (levels 1..3); root excluded.
        assert len(addrs) == 4
        assert addrs[0] == SMALL.counter_line_addr(PAGE_SIZE * 5)
        assert all(SMALL.region_of(a) in ("counter", "merkle") for a in addrs)

    def test_writeback_metadata_deterministic(self):
        a = SMALL.metadata_addresses_for_writeback(4096)
        b = SMALL.metadata_addresses_for_writeback(4096 + 64)
        assert a == b  # same page -> identical metadata set

    def test_paper_writeback_touches_11_metadata_lines(self):
        # counter + 10 internal nodes for the 16 GB device.
        assert len(PAPER.metadata_addresses_for_writeback(123 * PAGE_SIZE)) == 11
