"""Unit tests for the persistence-domain static analyzer (``repro lint``).

Each rule class gets a seeded violation in a throwaway mini-tree (the
analyzer never imports what it reads, so the snippets need no imports),
plus the real source tree must lint clean against the checked-in
baseline.
"""

import textwrap
from pathlib import Path

import repro
from repro.lint import LintConfig, RULES, run_lint, write_baseline

REPO_SRC = Path(repro.__file__).resolve().parent
REPO_BASELINE = REPO_SRC.parents[1] / "lint-baseline.txt"

#: A well-formed declaration layer shared by the seeded trees.
DECLARATIONS = """
    @persistence(
        persistent=("root_old", "nwb"),
        aka=("tcb",),
        mutators=("commit_root",),
    )
    class FakeTCB:
        def commit_root(self):
            self.root_old = b""
            self.nwb = 0

    @persistence(volatile=("overlay",), aka=("meta",))
    class FakeMeta:
        pass

    @persistence(volatile=("_batch",), aka=("wpq",))
    class FakeWPQ:
        def begin_atomic(self):
            self._fault("wpq.after_start")

        def commit_atomic(self):
            self._fault("wpq.after_end")

        def write_atomic(self, addr, data):
            pass

        def _fault(self, site):
            pass
"""


def make_tree(tmp_path, files):
    root = tmp_path / "pkg"
    for rel, text in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return root


def lint(tmp_path, files, **overrides):
    root = make_tree(tmp_path, files)
    return run_lint(LintConfig(root=root, base_dir=tmp_path, **overrides))


def rule_tokens(report):
    return {(f.rule, f.token) for f in report.new}


class TestSeededViolations:
    """Each rule class must catch its seeded violation."""

    def test_p0_declaration_defects(self, tmp_path):
        report = lint(tmp_path, {"decl.py": """
            ATTRS = ("x",)

            @persistence(persistent=ATTRS)
            class NonLiteral:
                pass

            @persistence("tcb")
            class Positional:
                pass

            @persistence(persistentt=("x",))
            class Typo:
                pass

            @persistence(persistent=("a",), volatile=("a",))
            class Overlap:
                pass
        """})
        tokens = rule_tokens(report)
        assert ("P0", "literal:persistent") in tokens
        assert ("P0", "positional") in tokens
        assert ("P0", "kwarg:persistentt") in tokens
        assert ("P0", "overlap") in tokens

    def test_p1_store_outside_owner(self, tmp_path):
        report = lint(tmp_path, {
            "decl.py": DECLARATIONS,
            "evil.py": """
                class Outside:
                    def __init__(self, tcb):
                        self.tcb = tcb

                    def smash(self):
                        self.tcb.root_old = b"evil"
            """,
        })
        assert ("P1", "tcb.root_old") in rule_tokens(report)
        [finding] = [f for f in report.new if f.rule == "P1"]
        assert finding.symbol == "Outside.smash"
        assert "commit_root" in finding.suggestion

    def test_p1_owner_and_unrelated_self_allowed(self, tmp_path):
        report = lint(tmp_path, {
            "decl.py": DECLARATIONS,
            "ok.py": """
                class OwnNamespace:
                    def __init__(self):
                        self.root_old = 7  # its own attr, not FakeTCB's
            """,
        })
        assert not [f for f in report.new if f.rule == "P1"]

    def test_p2_registry_drift_both_ways(self, tmp_path):
        report = lint(tmp_path, {
            "decl.py": DECLARATIONS,
            "plan.py": """
                SITES = (FaultSite("drain.ok"), FaultSite("ghost.site"),
                         FaultSite("wpq.after_start"), FaultSite("wpq.after_end"))
            """,
            "engine.py": """
                class Engine:
                    def _fault(self, site):
                        pass

                    def fine(self):
                        self._fault("drain.ok")

                    def rogue(self):
                        self._fault("off.registry")

                    def forward(self, site):
                        self._fault(site)
            """,
        })
        tokens = rule_tokens(report)
        assert ("P2", "unregistered:off.registry") in tokens
        assert ("P2", "unused:ghost.site") in tokens
        assert ("P2", "nonliteral") in tokens
        # the trampoline `def _fault` itself is not a non-literal call
        assert len([f for f in report.new if f.token == "nonliteral"]) == 1

    def test_p2_persist_point_coverage(self, tmp_path):
        report = lint(tmp_path, {
            "decl.py": DECLARATIONS,
            "plan.py": """
                SITES = (FaultSite("drain.ok"), FaultSite("wpq.after_start"),
                         FaultSite("wpq.after_end"))
            """,
            "drain.py": """
                class Drainer:
                    def _fault(self, site):
                        pass

                    def covered(self, tcb):
                        self._fault("drain.ok")
                        tcb.commit_root()

                    def callee_covered(self, wpq):
                        wpq.begin_atomic()  # FakeWPQ instruments itself
                        wpq.commit_atomic()

                    def uncovered(self, tcb):
                        tcb.commit_root()
            """,
        })
        uncovered = [f for f in report.new if f.token == "uncovered:commit_root"]
        assert [f.symbol for f in uncovered] == ["Drainer.uncovered"]

    def test_p3_batch_bracketing(self, tmp_path):
        report = lint(tmp_path, {"drain.py": """
            class Drainer:
                def split(self, wpq):
                    wpq.write_atomic(0, b"")

                def unbalanced(self, wpq):
                    wpq.begin_atomic()
                    wpq.write_atomic(0, b"")

                def stray(self, wpq):
                    wpq.commit_atomic()

                def good(self, wpq):
                    wpq.begin_atomic()
                    wpq.write_atomic(0, b"")
                    wpq.commit_atomic()
        """})
        by_symbol = {}
        for f in report.new:
            if f.rule == "P3":
                by_symbol.setdefault(f.symbol, set()).add(f.token)
        assert by_symbol["Drainer.split"] == {"split-batch"}
        assert "unbalanced" in by_symbol["Drainer.unbalanced"]
        assert by_symbol["Drainer.stray"] == {"stray-commit"}
        assert "Drainer.good" not in by_symbol

    def test_p4_volatile_read_on_recovery_path(self, tmp_path):
        report = lint(tmp_path, {
            "decl.py": DECLARATIONS,
            "core/recovery.py": """
                def rebuild(meta):
                    return meta.overlay
            """,
            "schemes.py": """
                class SecureNVMScheme:
                    @abstractmethod
                    def flush(self):
                        ...

                    @abstractmethod
                    def recover(self):
                        ...

                class LeakyScheme(SecureNVMScheme):
                    def flush(self):
                        pass

                    def recover(self):
                        return self.meta.overlay
            """,
        })
        p4 = {(f.symbol, f.token) for f in report.new if f.rule == "P4"}
        assert ("rebuild", "meta.overlay") in p4
        assert ("LeakyScheme.recover", "meta.overlay") in p4

    def test_p4_ignores_non_recovery_code(self, tmp_path):
        report = lint(tmp_path, {
            "decl.py": DECLARATIONS,
            "steady.py": """
                def steady_state(meta):
                    return meta.overlay
            """,
        })
        assert not [f for f in report.new if f.rule == "P4"]

    def test_p5_incomplete_scheme_contract(self, tmp_path):
        report = lint(tmp_path, {"schemes.py": """
            class SecureNVMScheme:
                @abstractmethod
                def flush(self):
                    ...

                @abstractmethod
                def recover(self):
                    ...

            class Complete(SecureNVMScheme):
                def flush(self):
                    pass

                def recover(self):
                    pass

            class ViaInheritance(Complete):
                pass

            class Incomplete(SecureNVMScheme):
                def flush(self):
                    pass
        """})
        p5 = {(f.symbol, f.token) for f in report.new if f.rule == "P5"}
        assert p5 == {("Incomplete", "missing:recover")}

    def test_all_rule_classes_detectable(self, tmp_path):
        """The analyzer distinguishes at least five rule classes."""
        assert set(RULES) >= {"P1", "P2", "P3", "P4", "P5"}


class TestBaseline:
    def test_baseline_accepts_and_roundtrips(self, tmp_path):
        files = {
            "decl.py": DECLARATIONS,
            "evil.py": """
                class Outside:
                    def smash(self, tcb):
                        tcb.root_old = b"evil"
            """,
        }
        report = lint(tmp_path, files)
        assert not report.ok()
        baseline_path = tmp_path / "baseline.txt"
        write_baseline(report, baseline_path)
        again = lint(tmp_path, files, baseline_path=baseline_path)
        assert again.ok(strict=True)
        assert len(again.baselined) == len(report.new)

    def test_stale_entries_fail_strict_only(self, tmp_path):
        baseline_path = tmp_path / "baseline.txt"
        baseline_path.write_text("P1|pkg/gone.py|Gone.smash|tcb.root_old\n")
        report = lint(tmp_path, {"clean.py": "X = 1\n"},
                      baseline_path=baseline_path)
        assert report.stale_baseline == ["P1|pkg/gone.py|Gone.smash|tcb.root_old"]
        assert report.ok(strict=False)
        assert not report.ok(strict=True)

    def test_finding_keys_survive_line_shifts(self, tmp_path):
        files = {
            "decl.py": DECLARATIONS,
            "evil.py": "class O:\n    def smash(self, tcb):\n        tcb.root_old = 1\n",
        }
        before = {f.key for f in lint(tmp_path, files).new}
        (tmp_path / "pkg" / "evil.py").write_text(
            "# pad\n# pad\n" + files["evil.py"], encoding="utf-8"
        )
        after_report = run_lint(
            LintConfig(root=tmp_path / "pkg", base_dir=tmp_path)
        )
        assert {f.key for f in after_report.new} == before


class TestRegistryOverride:
    def test_site_registry_override(self, tmp_path):
        files = {"engine.py": """
            def _fault(site):
                pass

            def step():
                _fault("a.b")
        """}
        ok = lint(tmp_path, files, site_registry=("a.b",))
        assert not [f for f in ok.new if f.rule == "P2"]
        drifted = lint(tmp_path, files, site_registry=("a.b", "c.d"))
        assert ("P2", "unused:c.d") in rule_tokens(drifted)


class TestRealTree:
    def test_repo_lints_clean_against_baseline(self):
        report = run_lint(LintConfig(
            root=REPO_SRC,
            base_dir=REPO_SRC.parent,
            baseline_path=REPO_BASELINE if REPO_BASELINE.exists() else None,
        ))
        assert report.files_analyzed > 50
        assert report.ok(strict=True), report.render_text()

    def test_repo_baseline_entries_are_each_justified(self):
        """Every baseline entry cites a DESIGN.md anchor that resolves."""
        if not REPO_BASELINE.exists():
            return
        design = (REPO_SRC.parents[1] / "DESIGN.md").read_text(encoding="utf-8")
        for line in REPO_BASELINE.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            entry, _, anchor = line.partition(" #")
            symbol = entry.split("|")[2]
            assert symbol.split(".")[-1] in design, (
                f"baseline entry {line!r} lacks a DESIGN.md justification"
            )
            assert anchor, (
                f"baseline entry {line!r} carries no #anchor — rule B0 "
                "will reject it"
            )
            assert f"{{#{anchor}}}" in design, (
                f"baseline anchor #{anchor} has no {{#{anchor}}} heading "
                "in DESIGN.md"
            )
