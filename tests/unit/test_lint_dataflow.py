"""Unit tests for the interprocedural persist-order dataflow analyzer.

Covers the call graph, the happens-before summaries behind P6, the
trace-seam coherence checks (P7), the determinism rules (D0-D2), the
baseline justification anchors (B0) and the static/dynamic persist-site
cross-check — against the committed fixture corpora in
``tests/fixtures/lint/`` and against the real tree.
"""

import json
import shutil
import textwrap
import time
from pathlib import Path

import pytest

import repro
from repro.lint import (
    LintConfig,
    build_callgraph,
    build_model,
    cross_check,
    run_lint,
    static_persist_sites,
    write_baseline,
)

REPO_SRC = Path(repro.__file__).resolve().parent
FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "lint"

#: Silences P2's registry cross-check in fixture trees (they declare
#: fault sites but carry no ``faults/plan.py``).
FIXTURE_SITES = ("wpq.after_start", "wpq.after_end", "tcb.commit_root")


def lint_fixture(name, **overrides):
    overrides.setdefault("site_registry", FIXTURE_SITES)
    return run_lint(
        LintConfig(root=FIXTURES / name, base_dir=FIXTURES, **overrides)
    )


def tokens(report):
    return {(f.rule, f.symbol, f.token) for f in report.new}


def rules_fired(report):
    return {f.rule for f in report.new}


class TestP6Fixtures:
    def test_true_positives_fire_in_every_control_flow_shape(self):
        report = lint_fixture("ordering_tp")
        found = tokens(report)
        # direct store trailing the seam's return
        assert ("P6", "LeakyScheme._post_writeback",
                "unfenced:self.wpq.write") in found
        # pending store one call deep, attributed to the helper's store site
        assert ("P6", "LeakyScheme._persist_counter",
                "unfenced:self.wpq.write") in found
        # one branch fences, the other leaks (may-analysis)
        assert ("P6", "BranchyScheme._post_writeback",
                "unfenced:self.wpq.write") in found
        # fence before the loop does not order stores inside it
        assert ("P6", "BranchyScheme._update_tree",
                "unfenced:self.wpq.write") in found

    def test_true_negatives_stay_silent(self):
        report = lint_fixture("ordering_tn")
        assert rules_fired(report) == set(), [f.render() for f in report.new]

    def test_findings_point_at_the_store_not_the_seam(self):
        report = lint_fixture("ordering_tp")
        helper = [f for f in report.new
                  if f.symbol == "LeakyScheme._persist_counter"]
        assert len(helper) == 1
        assert "LeakyScheme._update_tree" in helper[0].message
        assert "atomic batch" in helper[0].suggestion


class TestOsirisStopLossFixture:
    """The PR-4 bug class: P0-P5 miss it, P6 catches it."""

    def test_only_p6_catches_the_distilled_bug(self):
        report = lint_fixture("osiris_stoploss")
        assert rules_fired(report) == {"P6"}
        [finding] = report.new
        assert finding.symbol == "OsirisStopLoss._post_writeback"
        assert finding.token == "unfenced:self.wpq.write"

    def test_reverting_the_real_fix_is_flagged(self, tmp_path):
        """Undo the one-line atomic-batch fix in a scratch copy of the
        real tree: P6 must flag exactly the stop-loss write."""
        scratch = tmp_path / "repro"
        shutil.copytree(REPO_SRC, scratch)
        osiris = scratch / "core" / "schemes" / "osiris.py"
        src = osiris.read_text(encoding="utf-8")
        fixed = (
            "            self.wpq.begin_atomic()\n"
            "            self.wpq.write_atomic(counter_addr, "
            "self.meta.encoded(line))\n"
            "            self.wpq.commit_atomic()\n"
            '            self._fault("writeback.after_stoploss")\n'
        )
        assert fixed in src, "osiris stop-loss fix changed shape"
        reverted = src.replace(
            fixed,
            "            self.wpq.write(counter_addr, "
            "self.meta.encoded(line))\n",
        )
        osiris.write_text(reverted, encoding="utf-8")

        report = run_lint(LintConfig(root=scratch, base_dir=tmp_path))
        p6 = [f for f in report.new if f.rule == "P6"]
        assert len(p6) == 1
        assert p6[0].symbol == "OsirisPlus._post_writeback"
        assert p6[0].token == "unfenced:self.wpq.write"
        # and the structural rules alone would have shipped it
        assert not [
            f for f in report.new
            if f.rule < "P6" and "osiris" in f.path
        ]


class TestP7Fixtures:
    def test_untraced_mutator_unbalanced_group_unbracketed_op(self):
        report = lint_fixture("ordering_tp")
        found = tokens(report)
        assert ("P7", "FakeTCB.silent_bump", "untraced:silent_bump") in found
        assert ("P7", "UnbalancedGroup.writeback", "unbalanced-group") in found
        assert ("P7", "UnbracketedCounting._bump",
                "unbracketed:count_writeback") in found

    def test_bracketed_helper_and_direct_use_stay_silent(self):
        report = lint_fixture("ordering_tn")
        assert not [f for f in report.new if f.rule == "P7"]


class TestDeterminismFixtures:
    # These trees declare no fault sites at all.
    def test_true_positives(self):
        report = lint_fixture("determinism_tp", site_registry=())
        found = tokens(report)
        assert ("D0", "stamp_spec", "nondet:time.time") in found
        # two calls deep through the same-module call graph
        assert ("D0", "_entropy", "nondet:random.random") in found
        assert ("D1", "fold_addresses", "set-iteration") in found
        assert ("D2", "spec_key", "unsorted-json") in found

    def test_true_negatives_including_exemptions(self):
        report = lint_fixture("determinism_tn", site_registry=())
        assert rules_fired(report) == set(), [f.render() for f in report.new]

    def test_empty_entries_disable_the_family(self):
        report = lint_fixture(
            "determinism_tp", site_registry=(), deterministic_entries=()
        )
        assert rules_fired(report) == set()

    def test_entries_scope_the_reachable_set(self):
        # Aim the entries at one function only: its violations stay,
        # everything else goes quiet.
        report = lint_fixture(
            "determinism_tp",
            site_registry=(),
            deterministic_entries=("runs/spec.py::fold_addresses",),
        )
        assert rules_fired(report) == {"D1"}


class TestCallGraph:
    def make_model(self, tmp_path, files):
        root = tmp_path / "pkg"
        for rel, text in files.items():
            path = root / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        return build_model(root, tmp_path)

    def test_virtual_dispatch_joins_overrides(self, tmp_path):
        model = self.make_model(tmp_path, {"mod.py": """
            class Base:
                def seam(self):
                    self.step()

                def step(self):
                    pass

            class Sub(Base):
                def step(self):
                    self.leaf()

                def leaf(self):
                    pass
        """})
        graph = build_callgraph(model)
        [site] = [
            s for s in graph.sites["pkg/mod.py::Base.seam"] if s.name == "step"
        ]
        assert set(site.targets) == {
            "pkg/mod.py::Base.step", "pkg/mod.py::Sub.step",
        }
        reachable = graph.reachable(["pkg/mod.py::Base.seam"])
        assert "pkg/mod.py::Sub.leaf" in reachable

    def test_bare_calls_resolve_within_the_module_only(self, tmp_path):
        model = self.make_model(tmp_path, {
            "a.py": """
                def entry():
                    helper()

                def helper():
                    pass
            """,
            "b.py": """
                def helper():
                    pass
            """,
        })
        graph = build_callgraph(model)
        [site] = graph.sites["pkg/a.py::entry"]
        assert site.targets == ("pkg/a.py::helper",)


class TestCrossCheck:
    def test_real_tree_static_and_dynamic_sites_agree(self):
        model = build_model(REPO_SRC, REPO_SRC.parent)
        config = LintConfig(root=REPO_SRC, base_dir=REPO_SRC.parent)
        report = cross_check(model, config, steps=200)
        assert report.ok, report.render_text()
        owners = {owner for owner, _ in report.static_sites}
        assert owners == {"WritePendingQueue", "TCB"}
        assert ("WritePendingQueue", "write_atomic") in report.static_sites
        assert ("TCB", "count_writeback") in report.static_sites

    def test_static_side_reads_the_fixture_seams(self):
        model = build_model(FIXTURES / "ordering_tn", FIXTURES)
        config = LintConfig(
            root=FIXTURES / "ordering_tn",
            base_dir=FIXTURES,
            scheme_root="OrderedScheme",
            cross_check_entries=("_post_writeback", "_update_tree"),
        )
        sites = static_persist_sites(model, config)
        assert ("FakeWPQ", "write") in sites
        assert ("FakeWPQ", "write_atomic") in sites
        assert ("FakeTCB", "commit_root") in sites

    def test_mismatch_is_reported_in_both_directions(self):
        # Static model from the fixture tree, dynamic trace from the
        # real schemes: nothing lines up, and the report says so both
        # ways instead of hiding either side.
        model = build_model(FIXTURES / "ordering_tn", FIXTURES)
        config = LintConfig(
            root=FIXTURES / "ordering_tn",
            base_dir=FIXTURES,
            scheme_root="OrderedScheme",
            cross_check_entries=("_post_writeback",),
        )
        report = cross_check(model, config, schemes=("no_cc",), steps=50)
        assert not report.ok
        assert report.static_only
        assert report.dynamic_only
        text = report.render_text()
        assert "static-only" in text and "dynamic-only" in text
        doc = report.to_dict()
        assert doc["ok"] is False
        assert doc["static_only"] and doc["dynamic_only"]


class TestBaselineAnchors:
    def write_tree(self, tmp_path):
        root = tmp_path / "pkg"
        root.mkdir()
        (root / "decl.py").write_text(
            textwrap.dedent("""
                @persistence(persistent=("x",), aka=("tcb",), mutators=("bump",))
                class Owner:
                    def bump(self):
                        self.x = 1
            """),
            encoding="utf-8",
        )
        return root

    def seeded_finding_config(self, tmp_path, baseline_text, design_text=None):
        root = self.write_tree(tmp_path)
        (root / "evil.py").write_text(
            textwrap.dedent("""
                class Outside:
                    def smash(self, tcb):
                        tcb.x = 2
            """),
            encoding="utf-8",
        )
        baseline = tmp_path / "lint-baseline.txt"
        baseline.write_text(baseline_text, encoding="utf-8")
        design = None
        if design_text is not None:
            design = tmp_path / "DESIGN.md"
            design.write_text(design_text, encoding="utf-8")
        return LintConfig(
            root=root,
            base_dir=tmp_path,
            baseline_path=baseline,
            design_path=design,
        )

    KEY = "P1|pkg/evil.py|Outside.smash|tcb.x"

    def test_unanchored_entry_fails_b0(self, tmp_path):
        config = self.seeded_finding_config(
            tmp_path, f"{self.KEY}\n", design_text="# doc\n"
        )
        report = run_lint(config)
        assert [f.rule for f in report.new] == ["B0"]
        [b0] = report.new
        assert b0.token.startswith("unanchored:")
        assert not report.ok()

    def test_dangling_anchor_fails_b0(self, tmp_path):
        config = self.seeded_finding_config(
            tmp_path, f"{self.KEY} #missing-anchor\n", design_text="# doc\n"
        )
        report = run_lint(config)
        assert [f.rule for f in report.new] == ["B0"]
        [b0] = report.new
        assert b0.token == "dangling:missing-anchor"

    def test_resolving_anchor_is_clean(self, tmp_path):
        config = self.seeded_finding_config(
            tmp_path,
            f"{self.KEY} #ok-anchor\n",
            design_text="### Why this is fine {#ok-anchor}\n",
        )
        report = run_lint(config)
        assert report.ok(strict=True), [f.render() for f in report.new]
        assert [f.key for f in report.baselined] == [self.KEY]

    def test_without_design_path_anchors_are_not_required(self, tmp_path):
        config = self.seeded_finding_config(tmp_path, f"{self.KEY}\n")
        report = run_lint(config)
        assert report.ok(strict=True)

    def test_update_baseline_preserves_anchors(self, tmp_path):
        config = self.seeded_finding_config(
            tmp_path,
            f"{self.KEY} #ok-anchor\n",
            design_text="### Why {#ok-anchor}\n",
        )
        report = run_lint(config)
        write_baseline(report, config.baseline_path)
        text = config.baseline_path.read_text(encoding="utf-8")
        assert f"{self.KEY} #ok-anchor" in text
        # and the rewritten file still lints clean with anchors enforced
        assert run_lint(config).ok(strict=True)


class TestRealTreeDataflow:
    def config(self):
        return LintConfig(
            root=REPO_SRC,
            base_dir=REPO_SRC.parent,
            baseline_path=REPO_SRC.parents[1] / "lint-baseline.txt",
            design_path=REPO_SRC.parents[1] / "DESIGN.md",
        )

    def test_repo_lints_clean_with_anchors_enforced(self):
        report = run_lint(self.config())
        assert report.ok(strict=True), "\n".join(
            f.render() for f in report.new
        )
        baselined = {f.key for f in report.baselined}
        assert (
            "P7|repro/core/tcb.py|TCB.restore_registers|"
            "untraced:restore_registers"
        ) in baselined

    def test_determinism_rules_have_zero_false_positives(self):
        report = run_lint(self.config())
        assert not [
            f for f in report.new if f.rule in ("D0", "D1", "D2")
        ]

    def test_analyzer_runtime_stays_under_budget(self):
        started = time.perf_counter()
        report = run_lint(self.config())
        elapsed = time.perf_counter() - started
        assert report.files_analyzed > 50
        assert elapsed < 5.0, f"lint took {elapsed:.2f}s on the full tree"
        assert report.duration_seconds == pytest.approx(elapsed, abs=1.0)


class TestDeterministicJson:
    def test_json_is_byte_stable_and_round_trips(self):
        from repro.analysis.export import lint_from_json, lint_to_json

        config = LintConfig(
            root=REPO_SRC,
            base_dir=REPO_SRC.parent,
            baseline_path=REPO_SRC.parents[1] / "lint-baseline.txt",
        )
        first = lint_to_json(run_lint(config))
        second = lint_to_json(run_lint(config))
        assert first == second
        doc = json.loads(first)
        assert doc["schema_version"] == 1
        assert "duration" not in first  # wall clock must not leak in
        rebuilt = lint_from_json(first)
        assert lint_to_json(rebuilt) == first

    def test_schema_mismatch_is_rejected(self):
        from repro.analysis.export import lint_from_json

        with pytest.raises(ValueError, match="schema"):
            lint_from_json(json.dumps({"schema_version": 999}))
