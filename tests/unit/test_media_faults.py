"""Unit tests for the NVM media-fault model and the controller's retry path."""

import pytest

from repro.core.schemes import create_scheme
from repro.faults import MediaFaultModel
from repro.mem.nvm import PermanentMediaError, TransientReadFault
from repro.metadata.metacache import IntegrityError

from tests.conftest import TINY_CAPACITY, payload


@pytest.fixture
def scheme():
    s = create_scheme("ccnvm", data_capacity=TINY_CAPACITY)
    for i in range(4):
        s.writeback(i * 1000, 0x2000 + i * 64, payload(i))
    return s


class TestModelSchedule:
    def test_transient_faults_decrement_and_clear(self):
        model = MediaFaultModel()
        model.inject_transient(0x40, count=2)
        assert model.on_read(0x40) == "detectable"
        assert model.on_read(0x40) == "detectable"
        assert model.on_read(0x40) is None
        assert model.delivered["transient"] == 2

    def test_permanent_faults_never_clear(self):
        model = MediaFaultModel()
        model.inject_permanent(0x40)
        for _ in range(5):
            assert model.on_read(0x40) == "detectable"
        model.clear(0x40)
        assert model.on_read(0x40) is None

    def test_silent_bitflip_corrupts_one_bit(self):
        model = MediaFaultModel()
        model.inject_silent_bitflip(0x40, byte_index=7)
        assert model.on_read(0x40) == "silent"
        line = bytes(64)
        corrupted = model.corrupt(0x40, line)
        assert corrupted[7] == 0x01
        assert corrupted[:7] == line[:7] and corrupted[8:] == line[8:]

    def test_schedule_validation(self):
        model = MediaFaultModel()
        with pytest.raises(ValueError):
            model.inject_transient(0x40, count=0)
        with pytest.raises(ValueError):
            model.inject_silent_bitflip(0x40, byte_index=64)


class TestDeviceIntegration:
    def test_unfaulted_reads_unaffected(self, scheme):
        scheme.nvm.set_media_model(MediaFaultModel())
        got, _ = scheme.read(10_000, 0x2000)
        assert got == payload(0)

    def test_device_raises_transient_fault(self, scheme):
        model = MediaFaultModel()
        scheme.nvm.set_media_model(model)
        model.inject_transient(0x2000)
        with pytest.raises(TransientReadFault):
            scheme.nvm.read_line(0x2000)
        # The fault cleared on delivery; the re-read succeeds.
        scheme.nvm.read_line(0x2000)


class TestControllerRetry:
    def test_transient_fault_absorbed_with_backoff(self, scheme):
        model = MediaFaultModel()
        scheme.nvm.set_media_model(model)
        model.inject_transient(0x2000, count=2)
        got, _ = scheme.read(10_000, 0x2000)
        assert got == payload(0)
        stats = scheme.controller.stats
        assert stats.counter("media_read_retries").value == 2
        assert stats.counter("media_faults_absorbed").value == 1
        backoff = scheme.config.controller.read_retry_backoff_cycles
        # Exponential backoff: first wait + doubled second wait.
        assert stats.counter("media_backoff_cycles").value == backoff * 3

    def test_backoff_is_capped_at_the_hard_ceiling(self):
        import dataclasses

        from repro.common.config import SystemConfig

        config = SystemConfig()
        config = dataclasses.replace(
            config,
            controller=dataclasses.replace(
                config.controller,
                read_retry_limit=8,
                read_retry_backoff_cycles=16,
                read_retry_backoff_cap_cycles=64,
            ),
        )
        scheme = create_scheme("ccnvm", config=config, data_capacity=TINY_CAPACITY)
        scheme.writeback(0, 0x2000, payload(0))
        model = MediaFaultModel()
        scheme.nvm.set_media_model(model)
        model.inject_transient(0x2000, count=5)
        got, _ = scheme.read(10_000, 0x2000)
        assert got == payload(0)
        stats = scheme.controller.stats
        # Backoffs: 16, 32, then pinned at the 64-cycle ceiling.
        assert stats.counter("media_read_retries").value == 5
        assert stats.counter("media_backoff_capped").value == 3
        assert stats.counter("media_backoff_cycles").value == 16 + 32 + 64 * 3

    def test_default_retry_budget_never_reaches_the_cap(self, scheme):
        model = MediaFaultModel()
        scheme.nvm.set_media_model(model)
        model.inject_transient(0x2000, count=3)
        got, _ = scheme.read(10_000, 0x2000)
        assert got == payload(0)
        # 16 -> 32 -> 64 stays under the 256-cycle default ceiling.
        assert scheme.controller.stats.counter("media_backoff_capped").value == 0

    def test_permanent_fault_degrades_with_located_report(self, scheme):
        model = MediaFaultModel()
        scheme.nvm.set_media_model(model)
        model.inject_permanent(0x2040)
        limit = scheme.config.controller.read_retry_limit
        with pytest.raises(PermanentMediaError) as exc:
            scheme.read(10_000, 0x2040)
        assert exc.value.addr == 0x2040
        assert exc.value.region == "data"
        assert exc.value.attempts == limit + 1
        assert scheme.controller.stats.counter(
            "media_permanent_failures"
        ).value == 1
        # Other lines are still served: graceful degradation, not an outage.
        got, _ = scheme.read(20_000, 0x2000)
        assert got == payload(0)

    def test_silent_bitflip_caught_by_data_hmac(self, scheme):
        model = MediaFaultModel()
        scheme.nvm.set_media_model(model)
        model.inject_silent_bitflip(0x2000, byte_index=3)
        with pytest.raises(IntegrityError):
            scheme.read(10_000, 0x2000)
        model.clear(0x2000)
        got, _ = scheme.read(20_000, 0x2000)
        assert got == payload(0)
