"""Unit tests for the sparse whole-image Merkle tree operations."""

import pytest

from repro.common.constants import HMAC_SIZE
from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey
from repro.mem.nvm import NVMDevice
from repro.metadata.counters import CounterLine
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout, MerkleNodeId
from repro.metadata.merkle import MerkleTree, MismatchedEdge, read_slot, write_slot


ENC = SecretKey.from_seed("merkle-enc")
MAC = SecretKey.from_seed("merkle-mac")


def make_tree(capacity=1 << 20):
    layout = MemoryLayout(capacity)
    genesis = GenesisImage(layout, ENC, MAC)
    nvm = NVMDevice(layout, initializer=genesis.line)
    return MerkleTree(nvm, HmacEngine(MAC), genesis)


def write_counter(tree, leaf, major=1):
    line = CounterLine(major=major)
    addr = tree.layout.merkle_node_addr(MerkleNodeId(0, leaf))
    tree.nvm.poke(addr, line.encode())
    return addr


class TestSlotHelpers:
    def test_read_write_roundtrip(self):
        node = bytes(range(64))
        code = bytes([0xAB]) * HMAC_SIZE
        updated = write_slot(node, 2, code)
        assert read_slot(updated, 2) == code
        assert read_slot(updated, 1) == node[16:32]
        assert read_slot(updated, 3) == node[48:64]

    def test_slot_bounds_checked(self):
        with pytest.raises(ValueError):
            read_slot(bytes(64), 4)
        with pytest.raises(ValueError):
            write_slot(bytes(64), -1, bytes(16))

    def test_write_slot_validates_sizes(self):
        with pytest.raises(ValueError):
            write_slot(bytes(64), 0, bytes(8))
        with pytest.raises(ValueError):
            write_slot(bytes(32), 0, bytes(16))


class TestGenesisConsistency:
    def test_untouched_image_is_consistent(self):
        tree = make_tree()
        assert tree.verify_consistent(tree.genesis.root_register())

    def test_untouched_compute_root_is_genesis(self):
        tree = make_tree()
        assert tree.compute_root() == tree.genesis.root_register()

    def test_untouched_image_has_no_mismatches(self):
        tree = make_tree()
        assert tree.find_mismatches(tree.genesis.root_register()) == []


class TestBuildAndVerify:
    def test_build_after_counter_update_restores_consistency(self):
        tree = make_tree()
        write_counter(tree, leaf=5)
        root = tree.build()
        assert root != tree.genesis.root_register()
        assert tree.verify_consistent(root)

    def test_compute_root_matches_build(self):
        tree = make_tree()
        write_counter(tree, leaf=5)
        write_counter(tree, leaf=200)
        assert tree.compute_root() == tree.build()

    def test_compute_root_does_not_write(self):
        tree = make_tree()
        write_counter(tree, leaf=7)
        before = tree.nvm.touched_lines()
        tree.compute_root()
        assert tree.nvm.touched_lines() == before

    def test_build_writes_only_affected_ancestors(self):
        tree = make_tree()
        write_counter(tree, leaf=0)
        tree.build()
        touched = [
            tree.layout.node_of_addr(a)
            for a in tree.nvm.touched_lines()
            if tree.layout.region_of(a) == "merkle"
        ]
        expected = [
            n
            for n in tree.layout.ancestors_of_leaf(0)
            if n.level < tree.layout.root_level
        ]
        assert sorted((n.level, n.index) for n in touched) == sorted(
            (n.level, n.index) for n in expected
        )

    def test_two_leaves_same_parent(self):
        tree = make_tree()
        write_counter(tree, leaf=0)
        write_counter(tree, leaf=1)
        root = tree.build()
        assert tree.verify_consistent(root)

    def test_old_root_no_longer_matches(self):
        tree = make_tree()
        write_counter(tree, leaf=3)
        root1 = tree.build()
        write_counter(tree, leaf=3, major=2)
        root2 = tree.build()
        assert root1 != root2
        assert tree.verify_consistent(root2)
        assert not tree.verify_consistent(root1)


class TestMismatchLocation:
    def test_tampered_counter_located_at_leaf_edge(self):
        tree = make_tree()
        write_counter(tree, leaf=9)
        root = tree.build()
        addr = tree.layout.merkle_node_addr(MerkleNodeId(0, 9))
        raw = tree.nvm.peek(addr)
        tree.nvm.poke(addr, bytes([raw[0] ^ 1]) + raw[1:])
        mismatches = tree.find_mismatches(root)
        assert MismatchedEdge(
            tree.layout.parent_of(MerkleNodeId(0, 9)), MerkleNodeId(0, 9)
        ) in mismatches

    def test_tampered_internal_node_located(self):
        tree = make_tree()
        write_counter(tree, leaf=9)
        root = tree.build()
        node = MerkleNodeId(1, 2)  # parent of leaf 9
        addr = tree.layout.merkle_node_addr(node)
        raw = tree.nvm.peek(addr)
        tree.nvm.poke(addr, bytes([raw[0] ^ 1]) + raw[1:])
        mismatches = tree.find_mismatches(root)
        children = {(e.child.level, e.child.index) for e in mismatches}
        # The corrupted node mismatches its parent, and its corrupted slot
        # mismatches the child below.
        assert (1, 2) in children

    def test_replayed_counter_line_detected(self):
        tree = make_tree()
        addr = write_counter(tree, leaf=4, major=1)
        tree.build()
        old = tree.nvm.peek(addr)
        write_counter(tree, leaf=4, major=2)
        root = tree.build()
        tree.nvm.poke(addr, old)  # replay the previous version
        mismatches = tree.find_mismatches(root)
        assert any(e.child == MerkleNodeId(0, 4) for e in mismatches)

    def test_mismatch_against_root_register_reports_none_parent(self):
        tree = make_tree(1 << 16)  # 16 pages: top internal level is 1
        write_counter(tree, leaf=0)
        root = tree.build()
        node = MerkleNodeId(1, 0)
        addr = tree.layout.merkle_node_addr(node)
        raw = tree.nvm.peek(addr)
        tree.nvm.poke(addr, bytes([raw[0] ^ 1]) + raw[1:])
        mismatches = tree.find_mismatches(root)
        assert any(e.parent is None and e.child == node for e in mismatches)

    def test_consistent_replay_of_whole_path_caught_at_root(self):
        """Replaying a coherent old subtree still mismatches the root."""
        tree = make_tree(1 << 16)
        write_counter(tree, leaf=2, major=1)
        tree.build()
        snapshot = tree.nvm.snapshot()
        write_counter(tree, leaf=2, major=2)
        root = tree.build()
        # Replay the counter AND its whole internal path coherently.
        tree.nvm.restore(snapshot)
        mismatches = tree.find_mismatches(root)
        assert mismatches, "old consistent image must not match the new root"
