"""Unit tests for the verified meta cache (MetadataStore)."""

import pytest

from repro.common.config import CacheConfig, NVMConfig, SecurityConfig, SystemConfig
from repro.core.tcb import TCB
from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey
from repro.mem.cache import Cache
from repro.mem.nvm import NVMDevice
from repro.metadata.counters import CounterLine
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout, MerkleNodeId
from repro.metadata.merkle import MerkleTree
from repro.metadata.metacache import IntegrityError, MetadataStore


ENC = SecretKey.from_seed("mc-enc")
MAC = SecretKey.from_seed("mc-mac")
CAPACITY = 1 << 20  # 256 pages, 5 levels


def make_store(meta_bytes=16 * 1024, ways=4):
    config = SystemConfig(
        nvm=NVMConfig(capacity_bytes=CAPACITY),
        security=SecurityConfig(
            meta_cache=CacheConfig(
                size_bytes=meta_bytes,
                associativity=ways,
                hit_latency=32,
                name="meta",
                hashed_sets=True,
            )
        ),
    )
    layout = MemoryLayout(CAPACITY)
    genesis = GenesisImage(layout, ENC, MAC)
    nvm = NVMDevice(layout, initializer=genesis.line)
    tcb = TCB(ENC, MAC, genesis.root_register())
    engine = HmacEngine(MAC)
    store = MetadataStore(
        config, Cache(config.security.meta_cache), nvm, engine, tcb, genesis
    )
    store.on_dirty_evict = lambda victim: nvm.poke(victim.addr, store.encoded(victim))
    return store


def commit_counter(store, leaf, major=1):
    """Write a counter into NVM and rebuild tree + TCB roots around it."""
    addr = store.layout.merkle_node_addr(MerkleNodeId(0, leaf))
    store.nvm.poke(addr, CounterLine(major=major).encode())
    tree = MerkleTree(store.nvm, HmacEngine(MAC), store.genesis)
    store.tcb.set_roots(tree.build())
    return addr


class TestLoads:
    def test_miss_then_hit(self):
        store = make_store()
        first = store.load_counter(0)
        assert not first.hit
        assert isinstance(first.value, CounterLine)
        second = store.load_counter(0)
        assert second.hit
        assert second.value is first.value
        assert second.cycles == 32  # pure meta-cache hit

    def test_miss_cost_includes_reads_and_hmacs(self):
        store = make_store()
        result = store.load_counter(0)
        # Cold walk: 4 NVM reads (counter + 3 internal levels) and 4 HMAC
        # checks on top of the lookup.
        assert result.cycles == 32 + 4 * 180 + 4 * 80

    def test_walk_stops_at_cached_ancestor(self):
        store = make_store()
        store.load_counter(0)  # caches the whole path of page 0
        # Page 1 shares every ancestor with page 0.
        result = store.load_counter(4096)
        assert result.cycles == 32 + 1 * 180 + 1 * 80 + 32

    def test_load_node_internal(self):
        store = make_store()
        result = store.load_node(MerkleNodeId(2, 0))
        assert not result.hit
        assert len(result.value) == 64

    def test_genesis_counters_decode_to_zero(self):
        store = make_store()
        line = store.load_counter(12345 * 64).value
        assert line == CounterLine()

    def test_committed_counter_value_loads(self):
        store = make_store()
        commit_counter(store, leaf=3, major=7)
        line = store.load_counter(3 * 4096).value
        assert line.major == 7


class TestVerification:
    def test_tampered_counter_raises(self):
        store = make_store()
        addr = commit_counter(store, leaf=3)
        raw = store.nvm.peek(addr)
        store.nvm.poke(addr, bytes([raw[0] ^ 1]) + raw[1:])
        with pytest.raises(IntegrityError) as exc:
            store.load_counter(3 * 4096)
        assert exc.value.node == MerkleNodeId(0, 3)

    def test_tampered_internal_node_raises_and_locates(self):
        store = make_store()
        commit_counter(store, leaf=3)
        node = MerkleNodeId(1, 0)
        addr = store.layout.merkle_node_addr(node)
        raw = store.nvm.peek(addr)
        store.nvm.poke(addr, bytes([raw[0] ^ 1]) + raw[1:])
        with pytest.raises(IntegrityError) as exc:
            store.load_counter(0)
        assert exc.value.node == node
        assert store.stats.counter("integrity_failures").value == 1

    def test_cached_lines_bypass_verification(self):
        store = make_store()
        addr = commit_counter(store, leaf=3)
        store.load_counter(3 * 4096)  # cached + verified
        raw = store.nvm.peek(addr)
        store.nvm.poke(addr, bytes([raw[0] ^ 1]) + raw[1:])
        # Hit: the on-chip copy is trusted, NVM tampering invisible.
        assert store.load_counter(3 * 4096).hit

    def test_verified_flag_set(self):
        store = make_store()
        store.load_counter(0)
        line = store.probe(store.layout.counter_line_addr(0))
        assert line.verified


class TestEvictionHooks:
    def test_pre_evict_called_for_dirty_victim(self):
        store = make_store(meta_bytes=512, ways=2)  # 8 lines, tiny
        seen = []
        store.pre_evict = lambda victim: seen.append(victim.addr)
        # Dirty a line, then flood the cache to evict it.
        first = store.load_counter(0)
        store.probe(store.layout.counter_line_addr(0)).dirty = True
        for page in range(1, 40):
            store.load_counter(page * 4096)
        assert store.layout.counter_line_addr(0) in seen

    def test_on_dirty_evict_required(self):
        store = make_store(meta_bytes=512, ways=2)
        store.on_dirty_evict = None
        store.load_counter(0)
        store.probe(store.layout.counter_line_addr(0)).dirty = True
        with pytest.raises(RuntimeError):
            for page in range(1, 40):
                store.load_counter(page * 4096)

    def test_clean_victims_dropped_silently(self):
        store = make_store(meta_bytes=512, ways=2)
        called = []
        store.on_dirty_evict = lambda victim: called.append(victim.addr)
        for page in range(40):
            store.load_counter(page * 4096)
        assert called == []


class TestOverlay:
    def test_overlay_served_before_nvm(self):
        store = make_store()
        counter_addr = store.layout.counter_line_addr(0)
        newest = CounterLine(major=9)
        store.overlay[counter_addr] = newest.encode()
        result = store.load_verified(counter_addr)
        assert result.value.major == 9
        assert counter_addr not in store.overlay  # consumed
        line = store.probe(counter_addr)
        assert line.dirty
        assert line.verified

    def test_overlay_miss_falls_through_to_nvm(self):
        store = make_store()
        result = store.load_counter(0)
        assert result.value == CounterLine()


class TestStateManagement:
    def test_dirty_addresses_sorted(self):
        store = make_store()
        store.load_counter(5 * 4096)
        store.load_counter(2 * 4096)
        for page in (5, 2):
            store.probe(store.layout.counter_line_addr(page * 4096)).dirty = True
        assert store.dirty_addresses() == sorted(
            store.layout.counter_line_addr(p * 4096) for p in (2, 5)
        )

    def test_crash_drops_everything(self):
        store = make_store()
        store.load_counter(0)
        store.overlay[store.layout.counter_line_addr(4096)] = bytes(64)
        store.crash()
        assert store.probe(store.layout.counter_line_addr(0)) is None
        assert store.overlay == {}

    def test_encoded_rejects_junk_payload(self):
        store = make_store()
        store.load_counter(0)
        line = store.probe(store.layout.counter_line_addr(0))
        line.data = 12345
        with pytest.raises(TypeError):
            store.encoded(line)
