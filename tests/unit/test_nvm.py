"""Unit tests for the sparse NVM device model."""

import pytest

from repro.common.constants import CACHE_LINE_SIZE
from repro.mem.nvm import NVMDevice
from repro.metadata.layout import MemoryLayout


@pytest.fixture
def nvm():
    return NVMDevice(MemoryLayout(1 << 20))


LINE_A = bytes([0xAA]) * CACHE_LINE_SIZE
LINE_B = bytes([0xBB]) * CACHE_LINE_SIZE


class TestBasicIO:
    def test_unwritten_lines_read_zero(self, nvm):
        assert nvm.read_line(0) == bytes(CACHE_LINE_SIZE)

    def test_write_then_read(self, nvm):
        nvm.write_line(128, LINE_A)
        assert nvm.read_line(128) == LINE_A

    def test_overwrite(self, nvm):
        nvm.write_line(0, LINE_A)
        nvm.write_line(0, LINE_B)
        assert nvm.read_line(0) == LINE_B

    def test_rejects_unaligned_access(self, nvm):
        with pytest.raises(ValueError):
            nvm.read_line(1)
        with pytest.raises(ValueError):
            nvm.write_line(63, LINE_A)

    def test_rejects_out_of_range(self, nvm):
        with pytest.raises(ValueError):
            nvm.read_line(nvm.layout.total_capacity)

    def test_rejects_partial_line_payload(self, nvm):
        with pytest.raises(ValueError):
            nvm.write_line(0, b"short")


class TestPartialWrites:
    def test_merge_preserves_rest_of_line(self, nvm):
        nvm.write_line(0, LINE_A)
        nvm.write_partial(0, 16, b"\xcc" * 16)
        line = nvm.read_line(0)
        assert line[:16] == LINE_A[:16]
        assert line[16:32] == b"\xcc" * 16
        assert line[32:] == LINE_A[32:]

    def test_partial_into_virgin_line(self, nvm):
        nvm.write_partial(64, 48, b"\xdd" * 16)
        line = nvm.read_line(64)
        assert line[:48] == bytes(48)
        assert line[48:] == b"\xdd" * 16

    def test_partial_counts_as_one_write(self, nvm):
        nvm.write_partial(0, 0, b"\x01" * 16)
        assert nvm.total_writes == 1

    def test_partial_overflow_rejected(self, nvm):
        with pytest.raises(ValueError):
            nvm.write_partial(0, 56, b"\x00" * 16)


class TestTrafficAccounting:
    def test_total_counts(self, nvm):
        nvm.write_line(0, LINE_A)
        nvm.write_line(64, LINE_A)
        nvm.read_line(0)
        assert nvm.total_writes == 2
        assert nvm.total_reads == 1

    def test_per_region_classification(self, nvm):
        layout = nvm.layout
        nvm.write_line(0, LINE_A)  # data
        nvm.write_line(layout.counter_base, LINE_A)  # counter
        nvm.write_line(layout.hmac_base, LINE_A)  # data_hmac
        nvm.write_line(layout.merkle_base, LINE_A)  # merkle
        by_region = nvm.writes_by_region()
        assert by_region == {"data": 1, "counter": 1, "data_hmac": 1, "merkle": 1}

    def test_reads_by_region(self, nvm):
        nvm.read_line(0)
        nvm.read_line(nvm.layout.counter_base)
        assert nvm.reads_by_region() == {"data": 1, "counter": 1}

    def test_per_line_write_counts(self, nvm):
        nvm.write_line(0, LINE_A)
        nvm.write_line(0, LINE_B)
        nvm.write_line(64, LINE_A)
        assert nvm.write_count(0) == 2
        assert nvm.write_count(64) == 1
        assert nvm.write_count(128) == 0

    def test_peek_poke_bypass_accounting(self, nvm):
        nvm.poke(0, LINE_A)
        assert nvm.peek(0) == LINE_A
        assert nvm.total_writes == 0
        assert nvm.total_reads == 0


class TestSnapshotRestore:
    def test_snapshot_is_isolated(self, nvm):
        nvm.write_line(0, LINE_A)
        image = nvm.snapshot()
        nvm.write_line(0, LINE_B)
        assert image[0] == LINE_A

    def test_restore_rewinds_contents(self, nvm):
        nvm.write_line(0, LINE_A)
        image = nvm.snapshot()
        nvm.write_line(0, LINE_B)
        nvm.restore(image)
        assert nvm.peek(0) == LINE_A

    def test_touched_lines_sorted(self, nvm):
        nvm.write_line(192, LINE_A)
        nvm.write_line(0, LINE_A)
        nvm.write_line(64, LINE_A)
        assert nvm.touched_lines() == [0, 64, 192]
