"""Unit tests for the observability subsystem (repro.obs)."""

import json

import pytest

from repro.analysis.export import result_to_dict
from repro.obs import ObsSession
from repro.obs.events import BEGIN, END, INSTANT, EventBus
from repro.obs.export import (
    events_to_trace,
    obs_headline_to_json,
    series_to_csv,
    series_to_json,
    validate_trace,
)
from repro.obs.sampler import IntervalSampler
from repro.obs.timeline import TimelineSummary, analyze_events, render_table
from repro.common.stats import StatGroup
from repro.sim.runner import run_simulation
from repro.workloads.spec import spec_trace


def tiny_trace(length=400, seed=1):
    return spec_trace("gcc", length, seed)


class TestEventBus:
    def test_emit_and_read_back(self):
        bus = EventBus()
        bus.set_now(10)
        bus.begin("epoch.drain", "epoch", {"queued": 3})
        bus.set_now(25)
        bus.end("epoch.drain", "epoch")
        bus.instant("nvm.write", "wpq", {"region": "data"})
        kinds = [e.kind for e in bus.events()]
        assert kinds == [BEGIN, END, INSTANT]
        assert bus.events()[0].ts == 10
        assert bus.events()[1].ts == 25

    def test_timestamps_never_go_backwards(self):
        bus = EventBus()
        bus.begin("a", "x", ts=100)
        bus.end("a", "x", ts=40)  # stale explicit ts gets clamped
        assert [e.ts for e in bus.events()] == [100, 100]

    def test_ring_buffer_drops_oldest_and_counts(self):
        bus = EventBus(capacity=4)
        for i in range(10):
            bus.instant(f"e{i}", "t", ts=i)
        assert len(bus) == 4
        assert bus.dropped == 6
        assert [e.name for e in bus.events()] == ["e6", "e7", "e8", "e9"]

    def test_advance_moves_pseudo_time(self):
        bus = EventBus()
        bus.set_now(50)
        bus.advance(3)
        bus.instant("r", "recovery")
        assert bus.events()[0].ts == 53

    def test_clear_resets_events_but_not_clock(self):
        bus = EventBus()
        bus.instant("warmup", "t", ts=99)
        bus.clear()
        assert len(bus) == 0 and bus.dropped == 0
        bus.instant("measured", "t")
        assert bus.events()[0].ts == 99  # clock survives the reset


class TestZeroCostDisabled:
    def test_disabled_run_is_byte_identical_to_instrumented_components(self):
        """obs=None and obs=session produce identical simulation results."""
        trace = tiny_trace()
        plain = result_to_dict(
            run_simulation("ccnvm", trace)
        )
        observed = result_to_dict(
            run_simulation(
                "ccnvm", trace,
                obs=ObsSession(sample_every=100),
            )
        )
        assert plain == observed

    def test_disabled_components_hold_no_bus(self):
        trace = tiny_trace(length=50)
        session = ObsSession()
        run_simulation("ccnvm", trace)
        # A fresh observed run wires every seam; the unobserved run above
        # never allocated a bus anywhere (obs stays None on every seam).
        run_simulation(
            "ccnvm", trace, obs=session
        )
        system = session.system
        for component in (
            system.scheme, system.l1, system.l2,
            system.scheme.wpq, system.scheme.engine, system.scheme.meta.cache,
        ):
            assert component.obs is session.bus

    def test_session_without_sampling_has_no_sampler(self):
        session = ObsSession()
        run_simulation(
            "ccnvm", tiny_trace(length=50), obs=session,
        )
        assert session.sampler is None and session.samples() == []


class TestSampler:
    def make_stats(self):
        g = StatGroup("root")
        g.counter("hits", "hit count")
        g.distribution("lat", "latency")
        return g

    def test_records_deltas_not_totals(self):
        g = self.make_stats()
        s = IntervalSampler(g, every=10)
        g.counter("hits").inc(5)
        assert s.maybe_sample(10)
        g.counter("hits").inc(2)
        assert s.maybe_sample(20)
        deltas = [row.deltas["root.hits"] for row in s.samples()]
        assert deltas == [5, 2]

    def test_interval_gating_and_collapse(self):
        g = self.make_stats()
        s = IntervalSampler(g, every=10)
        assert not s.maybe_sample(5)
        assert s.maybe_sample(37)  # 3 elapsed intervals -> one sample
        assert not s.maybe_sample(39)
        assert s.maybe_sample(40)
        assert [row.cycle for row in s.samples()] == [37, 40]

    def test_distributions_sampled_by_count(self):
        g = self.make_stats()
        s = IntervalSampler(g, every=10)
        g.distribution("lat").sample(100.0)
        g.distribution("lat").sample(3.0)
        s.sample(10)
        assert s.samples()[0].deltas["root.lat"] == 2

    def test_reset_rebases_deltas(self):
        g = self.make_stats()
        s = IntervalSampler(g, every=10)
        g.counter("hits").inc(50)  # warm-up traffic
        s.reset()
        g.counter("hits").inc(3)
        s.sample(10)
        assert s.samples()[0].deltas["root.hits"] == 3

    def test_max_samples_bounds_memory(self):
        g = self.make_stats()
        s = IntervalSampler(g, every=1, max_samples=3)
        for cycle in range(1, 8):
            s.sample(cycle)
        assert len(s.samples()) == 3 and s.dropped == 4

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            IntervalSampler(self.make_stats(), every=0)


class TestTimeline:
    def test_interval_attribution(self):
        bus = EventBus()
        bus.begin("epoch.drain", "epoch", ts=100)
        bus.instant("nvm.write", "wpq", {"region": "data"}, ts=110)
        bus.end("epoch.drain", "epoch", ts=130)
        summary = analyze_events(bus.events(), total_cycles=200,
                                 total_nvm_writes=1)
        assert summary.phases["epoch_body"].cycles == 100 + 70
        assert summary.phases["drain"].cycles == 30
        assert summary.phases["drain"].nvm_writes == 1
        assert summary.phases["drain"].writes_by_region == {"data": 1}
        assert summary.cycle_coverage == 1.0
        assert summary.write_coverage == 1.0

    def test_nested_spread_inside_drain(self):
        bus = EventBus()
        bus.begin("epoch.drain", "epoch", ts=0)
        bus.begin("epoch.spread", "epoch", ts=10)
        bus.end("epoch.spread", "epoch", ts=25)
        bus.end("epoch.drain", "epoch", ts=40)
        summary = analyze_events(bus.events(), total_cycles=40)
        assert summary.phases["drain"].cycles == 10 + 15
        assert summary.phases["spread"].cycles == 15

    def test_recovery_prefix_and_counts(self):
        bus = EventBus()
        bus.begin("recovery.run", "recovery", ts=5)
        bus.begin("recovery.check_tree", "recovery", ts=6)
        bus.end("recovery.check_tree", "recovery", ts=9)
        bus.end("recovery.run", "recovery", ts=10)
        summary = analyze_events(bus.events(), total_cycles=10)
        assert summary.recoveries == 1
        assert summary.phases["recovery"].cycles == 5

    def test_unmatched_end_is_counted_not_fatal(self):
        bus = EventBus()
        bus.end("epoch.drain", "epoch", ts=10)
        summary = analyze_events(bus.events(), total_cycles=10)
        assert summary.unmatched_ends == 1
        assert summary.phases["epoch_body"].cycles == 10

    def test_epoch_commit_instants_counted_by_trigger(self):
        bus = EventBus()
        bus.instant("epoch.commit", "epoch",
                    {"trigger": "queue_full", "lines": 4}, ts=1)
        bus.instant("epoch.commit", "epoch",
                    {"trigger": "queue_full", "lines": 0}, ts=2)  # empty: skipped
        summary = analyze_events(bus.events(), total_cycles=2)
        assert summary.epochs == 1
        assert summary.drains_by_trigger == {"queue_full": 1}

    def test_as_dict_from_dict_round_trip(self):
        bus = EventBus()
        bus.begin("epoch.drain", "epoch", ts=2)
        bus.instant("nvm.write", "wpq", {"region": "counter"}, ts=3)
        bus.end("epoch.drain", "epoch", ts=7)
        summary = analyze_events(bus.events(), total_cycles=10,
                                 total_nvm_writes=1, scheme="ccnvm",
                                 workload="gcc")
        rebuilt = TimelineSummary.from_dict(summary.as_dict())
        assert rebuilt.as_dict() == summary.as_dict()

    def test_render_table_mentions_every_phase(self):
        session = ObsSession()
        result = run_simulation(
            "ccnvm", tiny_trace(),
            obs=session,
        )
        text = render_table([session.timeline(result)])
        assert "drain" in text and "[coverage]" in text


class TestFullRunAttribution:
    @pytest.mark.parametrize(
        "scheme",
        ["no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm", "ccnvm_locate"],
    )
    def test_coverage_at_least_95_percent(self, scheme):
        session = ObsSession()
        result = run_simulation(
            scheme, tiny_trace(),
            obs=session,
        )
        summary = session.timeline(result)
        assert summary.dropped_events == 0
        assert summary.cycle_coverage >= 0.95
        assert summary.write_coverage >= 0.95

    def test_ccnvm_sees_drain_and_spread_phases(self):
        session = ObsSession()
        result = run_simulation(
            "ccnvm", tiny_trace(),
            obs=session,
        )
        summary = session.timeline(result)
        assert summary.phases["drain"].nvm_writes > 0
        assert summary.phases["spread"].cycles > 0
        assert summary.epochs > 0


class TestExport:
    def run_observed(self):
        session = ObsSession(sample_every=200)
        run_simulation(
            "ccnvm", tiny_trace(),
            obs=session,
        )
        return session

    def test_chrome_trace_schema_is_valid(self):
        session = self.run_observed()
        trace = session.chrome_trace()
        assert validate_trace(trace) == []
        assert trace["traceEvents"][0]["ph"] == "M"
        # the container survives a JSON round trip
        assert validate_trace(json.loads(json.dumps(trace))) == []

    def test_validate_trace_catches_bad_nesting(self):
        trace = events_to_trace([])
        trace["traceEvents"] += [
            {"name": "a", "cat": "t", "ph": "B", "ts": 1, "pid": 0, "tid": 0},
            {"name": "b", "cat": "t", "ph": "E", "ts": 2, "pid": 0, "tid": 0},
        ]
        problems = validate_trace(trace)
        assert any("nest LIFO" in p for p in problems)

    def test_validate_trace_catches_backwards_time_and_unclosed(self):
        trace = events_to_trace([])
        trace["traceEvents"] += [
            {"name": "a", "cat": "t", "ph": "B", "ts": 5, "pid": 0, "tid": 0},
            {"name": "x", "cat": "t", "ph": "i", "ts": 3, "pid": 0, "tid": 0,
             "s": "t"},
        ]
        problems = validate_trace(trace)
        assert any("backwards" in p for p in problems)
        assert any("never ended" in p for p in problems)

    def test_validate_trace_rejects_non_trace_objects(self):
        assert validate_trace([]) != []
        assert validate_trace({"events": []}) != []

    def test_series_writers_agree_on_columns(self):
        session = self.run_observed()
        samples = session.samples()
        assert samples
        csv_text = series_to_csv(samples)
        doc = series_to_json(samples, every=200)
        header = csv_text.splitlines()[0].split(",")
        assert header == doc["columns"]
        assert header[0] == "cycle"
        assert len(csv_text.splitlines()) == len(samples) + 1
        assert len(doc["rows"]) == len(samples)

    def test_headline_artifact_shape(self):
        session = self.run_observed()
        summary = session.timeline(None)
        doc = obs_headline_to_json([summary.as_dict()], "gcc", 400)
        assert doc["bench"] == "obs_headline"
        assert doc["schemes"] == [""]
        assert doc["timelines"][0]["phases"]


class TestOrchestratedObs:
    def specs(self, schemes, length=300):
        from repro.runs.spec import simulation_spec

        return [
            simulation_spec(s, "gcc", length, 1, obs={"timeline": True})
            for s in schemes
        ]

    def test_obs_payload_rides_separately_from_result(self):
        from repro.analysis.export import result_from_dict
        from repro.runs.pool import _execute_simulation

        payload = self.specs(["ccnvm"])[0]
        payload = _execute_simulation(payload)
        obs_payload = payload.pop("obs")
        result = result_from_dict(payload)  # no unknown-field error
        summary = TimelineSummary.from_dict(obs_payload["timeline"])
        assert summary.scheme == result.scheme == "ccnvm"
        assert summary.cycle_coverage >= 0.95

    def test_obs_spec_hashes_differently_from_plain(self):
        from repro.runs.spec import simulation_spec

        plain = simulation_spec("ccnvm", "gcc", 300, 1)
        observed = self.specs(["ccnvm"])[0]
        assert plain.spec_hash() != observed.spec_hash()

    @pytest.mark.slow
    def test_serial_and_parallel_timelines_byte_identical(self):
        from repro.runs import run_specs
        from repro.runs.spec import canonical_json

        schemes = ["sc", "ccnvm", "ccnvm_locate"]

        def payloads(jobs):
            report = run_specs(self.specs(schemes), jobs=jobs)
            report.raise_on_failure()
            return canonical_json(
                [report.payload(s) for s in self.specs(schemes)]
            )

        assert payloads(1) == payloads(2)
