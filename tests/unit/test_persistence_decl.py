"""Unit tests for the runtime persistence-declaration layer.

The static analyzer reads declarations off the AST; these tests pin the
runtime half (decorator, registry, inheritance union) and cross-check
the repo's real annotations against the crash model they describe.
"""

import pytest

from repro.common.persistence import (
    REGISTRY,
    DomainDeclaration,
    declaration,
    is_declared,
    persistence,
    persistent_attrs,
    volatile_attrs,
)


class TestDecorator:
    def test_declaration_attached_and_registered(self):
        @persistence(persistent=("a",), volatile=("b",), aka=("thing",),
                     mutators=("poke",))
        class Thing:
            pass

        decl = declaration(Thing)
        assert isinstance(decl, DomainDeclaration)
        assert decl.persistent == ("a",)
        assert decl.volatile == ("b",)
        assert REGISTRY["Thing"] is decl
        assert is_declared(Thing)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            persistence(persistent=("x",), volatile=("x",))

    def test_positional_args_rejected(self):
        with pytest.raises(TypeError):
            persistence(("x",))  # keyword-only by design

    def test_subclass_inherits_but_does_not_redeclare(self):
        @persistence(persistent=("p",))
        class Base:
            pass

        class Child(Base):
            pass

        assert declaration(Child) is None  # nothing on Child itself
        assert is_declared(Child)  # ...but the lineage is declared
        assert persistent_attrs(Child) == frozenset({"p"})

    def test_subclass_declaration_unions_with_ancestors(self):
        @persistence(volatile=("base_v",))
        class Base2:
            pass

        @persistence(volatile=("child_v",))
        class Child2(Base2):
            pass

        assert volatile_attrs(Child2) == frozenset({"base_v", "child_v"})
        assert volatile_attrs(Base2) == frozenset({"base_v"})


class TestRepoAnnotations:
    """The real annotations match the crash behaviour they declare."""

    def test_core_classes_are_declared(self):
        from repro.core.drainer import DirtyAddressQueue
        from repro.core.schemes.base import SecureNVMScheme
        from repro.core.tcb import TCB
        from repro.mem.nvm import NVMDevice
        from repro.mem.wpq import WritePendingQueue
        from repro.metadata.metacache import MetadataStore

        for cls in (TCB, NVMDevice, WritePendingQueue, MetadataStore,
                    DirtyAddressQueue, SecureNVMScheme):
            assert is_declared(cls), cls.__name__

    def test_tcb_and_nvm_hold_all_persistent_state(self):
        from repro.core.tcb import TCB
        from repro.mem.nvm import NVMDevice

        assert "recovery_pending" in persistent_attrs(TCB)
        assert persistent_attrs(NVMDevice) == frozenset(
            {"_lines", "_write_counts"}
        )

    def test_scheme_volatile_domain_includes_meta_cache(self):
        from repro.core.schemes.ccnvm import CcNVM

        vols = volatile_attrs(CcNVM)
        assert "meta" in vols  # the meta cache handle is crash-lost state
        assert "queue" in vols  # the dirty address queue too
        assert not (vols & persistent_attrs(CcNVM))
