"""Supervision tests: the pool and ``run_specs`` recover from injected
worker crashes, hangs and torn IPC without losing or duplicating cells.
"""

import functools
import importlib

import pytest

from repro.chaos.inject import install, reset
from repro.chaos.plan import CHAOS_PLAN_ENV, ChaosPlan
from repro.runs.orchestrate import run_specs
from repro.runs.pool import RunOutcome, WorkerPool, _raw_outcome, payload_digest
from repro.runs.spec import simulation_spec

orchestrate_mod = importlib.import_module("repro.runs.orchestrate")

LENGTH = 40


@pytest.fixture(autouse=True)
def clean_injector(monkeypatch):
    monkeypatch.delenv(CHAOS_PLAN_ENV, raising=False)
    reset()
    yield
    reset()


def specs(n, length=LENGTH):
    return [simulation_spec("ccnvm", "lbm", length, seed) for seed in range(1, n + 1)]


def arm_everywhere(monkeypatch, plan):
    """Arm *plan* in this process and in future spawn workers."""
    monkeypatch.setenv(CHAOS_PLAN_ENV, plan.to_json())
    reset()  # parent re-reads the env on its next chaos_fire


class TestRawOutcome:
    def test_digest_mismatch_demoted_to_retryable_corrupt(self):
        spec = specs(1)[0]
        payload = {"value": 1}
        raw = {
            "status": "done",
            "payload": {"value": 2},  # mutated after the digest was taken
            "digest": payload_digest(payload),
            "duration": 0.1,
        }
        outcome = _raw_outcome(spec, raw)
        assert outcome.status == "corrupt"
        assert outcome.retryable
        assert outcome.payload is None
        assert "integrity digest" in outcome.error

    def test_matching_digest_passes_through(self):
        spec = specs(1)[0]
        payload = {"value": 1}
        raw = {
            "status": "done",
            "payload": payload,
            "digest": payload_digest(payload),
            "duration": 0.1,
        }
        outcome = _raw_outcome(spec, raw)
        assert outcome.ok and outcome.payload == payload


class TestInline:
    def test_process_death_sites_never_touch_the_parent(self):
        # worker_crash / worker_hang fire inline too, but the guard
        # keeps them from exiting or stalling the orchestrating process.
        install(
            ChaosPlan(
                0,
                {
                    "pool.worker_crash": {"hits": [1]},
                    "pool.worker_hang": {
                        "hits": [1],
                        "params": {"hang_seconds": 3600.0},
                    },
                },
            )
        )
        report = run_specs(specs(1), jobs=1)
        assert report.failed == 0 and report.executed == 1

    def test_result_corrupt_retried_to_identical_payload(self):
        baseline = run_specs(specs(1), jobs=1)
        spec = specs(1)[0]

        install(ChaosPlan(0, {"pool.result_corrupt": {"hits": [1]}}))
        report = run_specs([spec], jobs=1, retries=2)
        assert report.failed == 0
        assert report.retried == 1
        # Retried-to-success output is byte-identical to fault-free.
        assert report.payload(spec) == baseline.payload(spec)

    def test_result_corrupt_with_no_budget_is_reported(self):
        install(ChaosPlan(0, {"pool.result_corrupt": {"hits": [1]}}))
        report = run_specs(specs(1), jobs=1, retries=0)
        assert report.failed == 1
        outcome = next(iter(report.outcomes.values()))
        assert outcome.status == "corrupt" and outcome.retryable


class TestPooled:
    def test_chunk_timeout_redispatch_rescues_chunkmates(self, monkeypatch):
        # The second spec of the two-spec chunk hangs; the whole chunk
        # times out, then both specs are re-dispatched at chunk=1 in
        # fresh processes (visit counters reset) and both succeed.
        arm_everywhere(
            monkeypatch,
            ChaosPlan(
                0,
                {
                    "pool.worker_hang": {
                        "hits": [2],
                        "params": {"hang_seconds": 30.0},
                    }
                },
            ),
        )
        pool = WorkerPool(jobs=2, timeout=1.0, chunk=2, grace=1.5)
        outcomes = pool.run(specs(2))
        assert [o.ok for o in outcomes] == [True, True]
        assert pool.redispatched == 2

    def test_run_specs_supervision_recovers_from_worker_crash(
        self, monkeypatch
    ):
        # Three one-spec chunks over two workers: some worker's second
        # visit exits hard.  The lost chunk surfaces as a retryable
        # timeout; the supervision round re-runs it in a pristine
        # process and the sweep still completes every cell.
        arm_everywhere(
            monkeypatch,
            ChaosPlan(
                0,
                {"pool.worker_crash": {"hits": [2], "params": {"exit_code": 70}}},
            ),
        )
        monkeypatch.setattr(
            orchestrate_mod,
            "WorkerPool",
            functools.partial(WorkerPool, grace=1.5),
        )
        batch = specs(3)
        report = run_specs(batch, jobs=2, timeout=1.0, chunk=1, retries=2)
        assert report.failed == 0
        assert report.executed == 3
        assert report.retried >= 1
        assert set(report.outcomes) == {s.spec_hash() for s in batch}
        assert all(isinstance(o, RunOutcome) and o.ok for o in report.outcomes.values())
