"""Unit tests for the RecoveryManager's policies and mechanics,
independent of any scheme (the schemes' integration behaviour is covered
in tests/integration/)."""

from repro.core.recovery import (
    AttackFinding,
    RecoveryManager,
    RecoveryPolicy,
    RecoveryReport,
)
from repro.core.tcb import TCB
from repro.crypto.cme import CounterModeCipher
from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey
from repro.mem.nvm import NVMDevice
from repro.metadata.counters import CounterLine
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout
from repro.metadata.merkle import MerkleTree


ENC = SecretKey.from_seed("rm-enc")
MAC = SecretKey.from_seed("rm-mac")
CAPACITY = 1 << 18  # 64 pages


class Bench:
    """A bare NVM image + TCB, written to directly (no scheme)."""

    def __init__(self):
        self.layout = MemoryLayout(CAPACITY)
        self.genesis = GenesisImage(self.layout, ENC, MAC)
        self.nvm = NVMDevice(self.layout, initializer=self.genesis.line)
        self.tcb = TCB(ENC, MAC, self.genesis.root_register())
        self.hmac = HmacEngine(MAC)
        self.cipher = CounterModeCipher(ENC)
        self.merkle = MerkleTree(self.nvm, self.hmac, self.genesis)

    def write_block(self, addr, plaintext, major, minor):
        """Persist (data, data HMAC) for one block, as the WPQ would."""
        ct = self.cipher.encrypt(plaintext, addr, major, minor)
        self.nvm.poke(addr, ct)
        line, offset = self.layout.data_hmac_location(addr)
        old = self.nvm.peek(line)
        code = self.hmac.data_hmac(ct, addr, major, minor)
        self.nvm.poke(line, old[:offset] + code + old[offset + 16:])

    def commit_counters(self, minors_by_addr):
        """Write counter lines + tree + roots (a committed epoch)."""
        pages = {}
        for addr, minor in minors_by_addr.items():
            pages.setdefault(self.layout.counter_leaf_index(addr), {})[
                self.layout.block_slot(addr)
            ] = minor
        for leaf, blocks in pages.items():
            line = CounterLine()
            for block, minor in blocks.items():
                line.minors[block] = minor
            self.nvm.poke(
                self.layout.counter_line_addr(leaf * 4096), line.encode()
            )
        self.tcb.set_roots(self.merkle.build())

    def recover(self, policy):
        return RecoveryManager(
            self.nvm, self.tcb, self.merkle, policy, "bench"
        ).run()


NWB_POLICY = RecoveryPolicy(
    check_tree_against=("old", "new"), retry_limit=16, freshness_check="nwb"
)


class TestCleanPaths:
    def test_fresh_image_recovers_trivially(self):
        bench = Bench()
        report = bench.recover(NWB_POLICY)
        assert report.success and report.clean
        assert report.total_retries == 0

    def test_stale_counter_rolled_forward(self):
        bench = Bench()
        bench.write_block(0x1000, b"v1".ljust(64), 0, 1)
        bench.commit_counters({0x1000: 1})
        # Two more write-backs after the commit (counter stays stale).
        bench.write_block(0x1000, b"v3".ljust(64), 0, 3)
        bench.tcb.nwb = 2
        report = bench.recover(NWB_POLICY)
        assert report.success
        assert report.total_retries == 2
        stored = CounterLine.decode(
            bench.nvm.peek(bench.layout.counter_line_addr(0x1000))
        )
        assert stored.counter_pair(bench.layout.block_slot(0x1000)) == (0, 3)

    def test_rebuild_aligns_both_roots(self):
        bench = Bench()
        bench.write_block(0x2000, b"x".ljust(64), 0, 1)
        bench.tcb.nwb = 1
        report = bench.recover(NWB_POLICY)
        assert report.success
        assert bench.tcb.root_old == bench.tcb.root_new
        assert bench.merkle.verify_consistent(bench.tcb.root_new)

    def test_matched_root_reported(self):
        bench = Bench()
        report = bench.recover(NWB_POLICY)
        assert report.matched_root == "old"


class TestPolicyKnobs:
    def test_retry_limit_zero_flags_any_staleness(self):
        bench = Bench()
        bench.write_block(0x1000, b"v".ljust(64), 0, 1)  # counter still 0
        policy = RecoveryPolicy(retry_limit=0, freshness_check=None)
        report = bench.recover(policy)
        assert 0x1000 in report.unrecoverable_blocks

    def test_retry_limit_bounds_the_search(self):
        bench = Bench()
        bench.write_block(0x1000, b"v".ljust(64), 0, 9)
        short = RecoveryPolicy(retry_limit=4, freshness_check=None)
        assert 0x1000 in bench.recover(short).unrecoverable_blocks
        bench2 = Bench()
        bench2.write_block(0x1000, b"v".ljust(64), 0, 9)
        long = RecoveryPolicy(retry_limit=16, freshness_check=None)
        assert bench2.recover(long).success

    def test_tree_check_skipped_when_not_requested(self):
        bench = Bench()
        # Corrupt an internal node: with no tree check, no tree finding.
        from repro.metadata.layout import MerkleNodeId

        addr = bench.layout.merkle_node_addr(MerkleNodeId(1, 0))
        bench.nvm.poke(addr, bytes(64))
        policy = RecoveryPolicy(check_tree_against=(), retry_limit=4)
        report = bench.recover(policy)
        assert not any(f.kind == "tree_tampering" for f in report.findings)

    def test_nwb_mismatch_detected(self):
        bench = Bench()
        bench.write_block(0x1000, b"v".ljust(64), 0, 1)
        bench.tcb.nwb = 5  # claims five write-backs; only one retry found
        report = bench.recover(NWB_POLICY)
        assert report.potential_replay_detected
        assert not report.success

    def test_root_new_freshness_check(self):
        bench = Bench()
        bench.write_block(0x1000, b"v".ljust(64), 0, 1)
        # root_new deliberately left at genesis while data moved on: the
        # rebuilt root will differ.
        policy = RecoveryPolicy(retry_limit=16, freshness_check="root_new")
        report = bench.recover(policy)
        assert report.potential_replay_detected


class TestReportMechanics:
    def test_add_clears_clean(self):
        report = RecoveryReport(scheme="x")
        assert report.clean
        report.add(AttackFinding("data_tampering", address=0))
        assert not report.clean
        assert len(report.findings) == 1

    def test_findings_default_isolated(self):
        a = RecoveryReport(scheme="a")
        b = RecoveryReport(scheme="b")
        a.add(AttackFinding("data_tampering", address=0))
        assert b.findings == []
