"""Unit tests for the figure-table/reporting layer."""

import pytest

from repro.analysis.report import (
    FigureTable,
    HeadlineNumbers,
    SensitivitySeries,
    geometric_mean,
    headline_numbers,
    ipc_table,
    write_traffic_table,
)
from repro.sim.runner import DesignComparison, SimulationResult


def fake_result(scheme, workload, ipc, writes):
    return SimulationResult(
        scheme=scheme,
        workload=workload,
        instructions=1000,
        cycles=int(1000 / ipc),
        ipc=ipc,
        nvm_writes=writes,
        nvm_reads=0,
    )


def fake_comparison(workload, ipcs, writes):
    results = {
        scheme: fake_result(scheme, workload, ipcs[scheme], writes[scheme])
        for scheme in ipcs
    }
    return DesignComparison(workload=workload, results=results)


COMPARISONS = {
    "wl_a": fake_comparison(
        "wl_a",
        ipcs={"no_cc": 1.0, "sc": 0.6, "osiris_plus": 0.65, "ccnvm_no_ds": 0.62, "ccnvm": 0.8},
        writes={"no_cc": 100, "sc": 550, "osiris_plus": 105, "ccnvm_no_ds": 135, "ccnvm": 135},
    ),
    "wl_b": fake_comparison(
        "wl_b",
        ipcs={"no_cc": 2.0, "sc": 1.2, "osiris_plus": 1.3, "ccnvm_no_ds": 1.26, "ccnvm": 1.7},
        writes={"no_cc": 200, "sc": 1100, "osiris_plus": 210, "ccnvm_no_ds": 290, "ccnvm": 290},
    ),
}


class TestGeometricMean:
    def test_empty(self):
        assert geometric_mean([]) == 0.0

    def test_single(self):
        assert geometric_mean([3.0]) == 3.0

    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_invariant_to_order(self):
        assert geometric_mean([2.0, 8.0, 0.5]) == pytest.approx(
            geometric_mean([0.5, 2.0, 8.0])
        )


class TestFigureTables:
    def test_ipc_table_values(self):
        table = ipc_table(COMPARISONS)
        assert table.rows["wl_a"]["ccnvm"] == pytest.approx(0.8)
        assert table.rows["wl_b"]["sc"] == pytest.approx(0.6)

    def test_write_table_values(self):
        table = write_traffic_table(COMPARISONS)
        assert table.rows["wl_a"]["sc"] == pytest.approx(5.5)
        assert table.rows["wl_b"]["ccnvm"] == pytest.approx(1.45)

    def test_average_is_geometric(self):
        table = ipc_table(COMPARISONS)
        assert table.average("ccnvm") == pytest.approx(
            geometric_mean([0.8, 0.85])
        )

    def test_column_order_matches_rows(self):
        table = ipc_table(COMPARISONS)
        assert table.column("sc") == [0.6, 0.6]

    def test_render_contains_everything(self):
        text = ipc_table(COMPARISONS).render()
        assert "wl_a" in text
        assert "cc-NVM" in text
        assert "average" in text
        assert "Figure 5(a)" in text

    def test_custom_table(self):
        table = FigureTable("custom", ["x"])
        table.add_row("w", {"x": 2.0})
        assert table.averages() == {"x": 2.0}


class TestHeadline:
    def test_computed_scalars(self):
        numbers = headline_numbers(COMPARISONS)
        assert numbers.sc_write_amplification == pytest.approx(5.5)
        ccnvm = geometric_mean([0.8, 0.85])
        osiris = geometric_mean([0.65, 0.65])
        assert numbers.ccnvm_ipc_gain_over_osiris == pytest.approx(
            ccnvm / osiris - 1.0
        )
        assert numbers.ccnvm_ipc_loss == pytest.approx(1.0 - ccnvm)

    def test_render_mentions_paper_values(self):
        text = headline_numbers(COMPARISONS).render()
        assert "+20.4%" in text
        assert "5.5x" in text
        assert "-41.4%" in text

    def test_dataclass_is_frozen(self):
        numbers = HeadlineNumbers(0.2, 0.3, 0.4, 5.5, 0.19)
        with pytest.raises(AttributeError):
            numbers.sc_ipc_loss = 0.1


class TestSensitivitySeries:
    def make(self):
        series = SensitivitySeries("t", "N")
        series.add_point(4, "ccnvm", ipc=0.7, writes=1.5)
        series.add_point(16, "ccnvm", ipc=0.78, writes=1.35)
        series.add_point(64, "ccnvm", ipc=0.8, writes=1.3)
        return series

    def test_series_sorted_by_parameter(self):
        series = self.make()
        assert series.series("ccnvm", "ipc") == [
            (4, 0.7), (16, 0.78), (64, 0.8)
        ]

    def test_series_per_metric(self):
        series = self.make()
        assert series.series("ccnvm", "writes")[0] == (4, 1.5)

    def test_render(self):
        text = self.make().render()
        assert "normalized ipc vs N" in text
        assert "normalized writes vs N" in text
        assert "cc-NVM" in text
