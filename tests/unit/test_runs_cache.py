"""Unit tests for the content-addressed result cache."""

import json

from repro.runs.cache import ResultCache, code_fingerprint
from repro.runs.spec import simulation_spec

SPEC = simulation_spec("ccnvm", "lbm", 1000, 1)


def make_cache(tmp_path, fingerprint="f" * 16):
    return ResultCache(tmp_path / "cache", fingerprint=fingerprint)


class TestStore:
    def test_miss_then_hit(self, tmp_path):
        cache = make_cache(tmp_path)
        assert cache.get(SPEC) is None
        cache.put(SPEC, {"ipc": 1.25})
        assert cache.get(SPEC) == {"ipc": 1.25}
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_entry_is_keyed_by_spec_hash(self, tmp_path):
        cache = make_cache(tmp_path)
        path = cache.put(SPEC, {"x": 1})
        assert path.name == f"{SPEC.spec_hash()}.json"
        envelope = json.loads(path.read_text())
        assert envelope["spec"] == SPEC.to_dict()
        assert envelope["fingerprint"] == cache.fingerprint

    def test_other_fingerprint_is_a_miss(self, tmp_path):
        old = make_cache(tmp_path, fingerprint="a" * 16)
        old.put(SPEC, {"x": 1})
        new = make_cache(tmp_path, fingerprint="b" * 16)
        assert new.get(SPEC) is None

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = make_cache(tmp_path)
        path = cache.put(SPEC, {"x": 1})
        path.write_text("{torn")
        assert cache.get(SPEC) is None
        assert not path.exists()

    def test_real_fingerprint_is_stable_within_a_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestStats:
    def test_flush_accumulates_across_sessions(self, tmp_path):
        first = make_cache(tmp_path)
        first.get(SPEC)  # miss
        first.put(SPEC, {"x": 1})
        first.flush_stats()
        second = make_cache(tmp_path)
        assert second.cumulative["misses"] == 1
        second.get(SPEC)  # hit
        stats = second.flush_stats()
        assert stats["hits"] == 1
        assert stats["stores"] == 1
        assert stats["flushes"] == 2
        # flushing resets the session counters
        assert (second.hits, second.misses, second.stores) == (0, 0, 0)

    def test_status_reports_generations_and_stats(self, tmp_path):
        cache = make_cache(tmp_path, fingerprint="a" * 16)
        cache.put(SPEC, {"x": 1})
        cache.flush_stats()
        status = make_cache(tmp_path, fingerprint="b" * 16).status()
        assert status["generations"]["a" * 16]["entries"] == 1
        assert not status["generations"]["a" * 16]["current"]
        assert status["stats"]["stores"] == 1


class TestGc:
    def test_gc_drops_stale_generations_only(self, tmp_path):
        old = make_cache(tmp_path, fingerprint="a" * 16)
        old.put(SPEC, {"x": 1})
        new = make_cache(tmp_path, fingerprint="b" * 16)
        new.put(SPEC, {"x": 2})
        swept = new.gc()
        assert (swept["removed"], swept["kept"]) == (1, 1)
        assert swept["reclaimed_bytes"] > 0
        assert new.get(SPEC) == {"x": 2}

    def test_gc_everything_also_clears_stats(self, tmp_path):
        cache = make_cache(tmp_path)
        cache.put(SPEC, {"x": 1})
        cache.flush_stats()
        swept = cache.gc(everything=True)
        assert (swept["removed"], swept["kept"]) == (1, 0)
        assert cache.get(SPEC) is None
        assert cache._read_stats()["stores"] == 0

    def test_gc_max_generations_retains_newest_stale(self, tmp_path):
        import os
        import time

        for i, fp in enumerate(("a" * 16, "b" * 16, "c" * 16)):
            gen = make_cache(tmp_path, fingerprint=fp)
            gen.put(SPEC, {"x": i})
            # Distinct directory mtimes so retention order is observable.
            stamp = time.time() - (3 - i) * 100
            os.utime(gen.path_for(SPEC).parent, (stamp, stamp))
        current = make_cache(tmp_path, fingerprint="d" * 16)
        current.put(SPEC, {"x": 3})
        swept = current.gc(max_generations=3)
        # current + the two newest stale generations survive.
        assert swept["removed"] == 1
        assert swept["kept"] == 3
        assert not (current.results_dir / ("a" * 16)).exists()
        assert (current.results_dir / ("c" * 16)).exists()

    def test_gc_max_bytes_evicts_stale_before_current(self, tmp_path):
        stale = make_cache(tmp_path, fingerprint="a" * 16)
        stale.put(SPEC, {"x": "stale"})
        current = make_cache(tmp_path, fingerprint="b" * 16)
        path = current.put(SPEC, {"x": "current"})
        keep = path.stat().st_size
        swept = current.gc(max_generations=2, max_bytes=keep)
        assert swept["removed"] == 1
        assert current.get(SPEC) == {"x": "current"}
        assert not (current.results_dir / ("a" * 16)).exists() or not list(
            (current.results_dir / ("a" * 16)).glob("*.json")
        )

    def test_gc_reclaimed_bytes_accumulate_in_stats(self, tmp_path):
        cache = make_cache(tmp_path, fingerprint="a" * 16)
        cache.put(SPEC, {"x": 1})
        newer = make_cache(tmp_path, fingerprint="b" * 16)
        swept = newer.gc()
        stats = newer._read_stats()
        assert stats["gc_runs"] == 1
        assert stats["gc_removed"] == 1
        assert stats["gc_reclaimed_bytes"] == swept["reclaimed_bytes"] > 0
        assert newer.status()["stats"]["gc_reclaimed_bytes"] > 0

    def test_gc_sweeps_orphaned_tmp_files(self, tmp_path):
        cache = make_cache(tmp_path)
        path = cache.put(SPEC, {"x": 1})
        orphan = path.parent / f"{path.name}abc123.tmp"
        orphan.write_text("torn writer residue")
        swept = cache.gc(max_generations=1)
        assert not orphan.exists()
        assert swept["reclaimed_bytes"] > 0
        assert cache.get(SPEC) == {"x": 1}
