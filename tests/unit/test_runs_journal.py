"""Unit tests for the JSONL run journal (resume-after-interrupt)."""

from repro.runs.journal import RunJournal
from repro.runs.spec import simulation_spec

FP = "0123456789abcdef"
SPEC_A = simulation_spec("ccnvm", "lbm", 1000, 1)
SPEC_B = simulation_spec("sc", "lbm", 1000, 1)


class TestJournal:
    def test_records_survive_reopen(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path, FP) as journal:
            journal.record(SPEC_A, "done", {"ipc": 1.0}, duration=0.5)
        with RunJournal(path, FP) as journal:
            assert journal.resumed == 1
            record = journal.completed(SPEC_A.spec_hash())
            assert record["payload"] == {"ipc": 1.0}
            assert journal.completed(SPEC_B.spec_hash()) is None

    def test_failed_records_are_not_resumable(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path, FP) as journal:
            journal.record(SPEC_A, "failed", None, error="boom")
        with RunJournal(path, FP) as journal:
            assert journal.completed(SPEC_A.spec_hash()) is None

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path, FP) as journal:
            journal.record(SPEC_A, "done", {"ipc": 1.0})
        # a crash mid-append leaves a partial record with no newline
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"spec_hash": "deadbeef", "status": "do')
        with RunJournal(path, FP) as journal:
            assert journal.completed(SPEC_A.spec_hash()) is not None
            assert "deadbeef" not in journal.records
            journal.record(SPEC_B, "done", {"ipc": 2.0})
        # the torn bytes were truncated away: the file parses end to end
        with RunJournal(path, FP) as journal:
            assert len(journal.records) == 2

    def test_fingerprint_mismatch_restarts_the_journal(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        with RunJournal(path, FP) as journal:
            journal.record(SPEC_A, "done", {"ipc": 1.0})
        with RunJournal(path, "f" * 16) as journal:
            assert journal.records == {}
            assert journal.resumed == 0

    def test_garbage_file_restarts_the_journal(self, tmp_path):
        path = tmp_path / "sweep.jsonl"
        path.write_text("not json at all\n")
        with RunJournal(path, FP) as journal:
            assert journal.records == {}
            journal.record(SPEC_A, "done", {"ipc": 1.0})
        with RunJournal(path, FP) as journal:
            assert journal.resumed == 1
