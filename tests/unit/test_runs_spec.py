"""Unit tests for run specs: canonical hashing and sweep expansion."""

import pytest

from repro.common.config import SystemConfig
from repro.runs.spec import (
    RunSpec,
    Sweep,
    canonical_json,
    config_from_dict,
    config_to_dict,
    simulation_spec,
)


class TestSpecHash:
    def test_identical_specs_hash_identically(self):
        a = simulation_spec("ccnvm", "lbm", 4000, 1)
        b = simulation_spec("ccnvm", "lbm", 4000, 1)
        assert a.spec_hash() == b.spec_hash()

    def test_distinct_seeds_hash_distinctly(self):
        a = simulation_spec("ccnvm", "lbm", 4000, 1)
        b = simulation_spec("ccnvm", "lbm", 4000, 2)
        assert a.spec_hash() != b.spec_hash()

    def test_every_field_feeds_the_hash(self):
        base = simulation_spec("ccnvm", "lbm", 4000, 1)
        variants = [
            simulation_spec("sc", "lbm", 4000, 1),
            simulation_spec("ccnvm", "gcc", 4000, 1),
            simulation_spec("ccnvm", "lbm", 4001, 1),
            simulation_spec("ccnvm", "lbm", 4000, 1, scheme_seed=7),
            simulation_spec("ccnvm", "lbm", 4000, 1, warmup=0.1),
            simulation_spec("ccnvm", "lbm", 4000, 1, data_capacity=1 << 20),
            simulation_spec("ccnvm", "lbm", 4000, 1, config=SystemConfig().with_epoch(update_limit=8)),
        ]
        hashes = {base.spec_hash()} | {v.spec_hash() for v in variants}
        assert len(hashes) == len(variants) + 1

    def test_explicit_default_config_hashes_like_none(self):
        # None means "paper defaults", and hashing must not distinguish a
        # spec built from the explicit default object: both run the same
        # system.  (Normalization happens at execution, not hashing —
        # the dict image of the default config *is* distinct content.)
        implicit = simulation_spec("ccnvm", "lbm", 400, 1, config=None)
        explicit = simulation_spec("ccnvm", "lbm", 400, 1, config=SystemConfig())
        assert implicit.spec_hash() != explicit.spec_hash()
        assert implicit.system_config() == explicit.system_config()

    def test_dict_round_trip_preserves_hash(self):
        spec = simulation_spec(
            "osiris_plus", "milc", 2000, 3,
            config=SystemConfig().with_epoch(update_limit=4), warmup=0.25,
        )
        clone = RunSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown run kind"):
            RunSpec(kind="teleport")

    def test_describe_names_the_cell(self):
        label = simulation_spec("ccnvm", "lbm", 4000, 1).describe()
        assert "ccnvm" in label and "lbm@4000#1" in label


class TestConfigRoundTrip:
    def test_default_config_round_trips(self):
        assert config_from_dict(config_to_dict(SystemConfig())) == SystemConfig()

    def test_modified_config_round_trips(self):
        config = SystemConfig().with_epoch(update_limit=4, dirty_queue_entries=40)
        config = config.with_nvm(read_latency_ns=80.0)
        assert config_from_dict(config_to_dict(config)) == config


class TestSweep:
    def test_cartesian_expansion(self):
        sweep = Sweep(
            schemes=("no_cc", "ccnvm"),
            workloads=("lbm", "gcc"),
            length=1000,
            seeds=(1, 2),
        )
        cells = sweep.expand()
        assert len(cells) == 8
        keys = [key for key, _ in cells]
        assert keys[0] == ("default", "no_cc", "lbm", 1)
        assert len(set(keys)) == 8
        assert len({spec.spec_hash() for _, spec in cells}) == 8

    def test_config_variants_expand_by_label(self):
        sweep = Sweep(
            schemes=("ccnvm",),
            workloads=("lbm",),
            length=500,
            configs={
                "n4": SystemConfig().with_epoch(update_limit=4),
                "n16": None,
            },
        )
        cells = dict(sweep.expand())
        assert set(k[0] for k in cells) == {"n4", "n16"}
        assert cells[("n4", "ccnvm", "lbm", 1)].config is not None
        assert cells[("n16", "ccnvm", "lbm", 1)].config is None
