"""Per-design timing-model behaviours: the cycle accounting that drives
Figure 5(a)'s ordering, pinned at the unit level."""

import pytest

from repro.core.schemes import create_scheme
from repro.sim.runner import run_simulation
from repro.workloads import synthetic
from tests.conftest import SMALL_CAPACITY, payload


def fresh(scheme_name, config):
    return create_scheme(scheme_name, config, SMALL_CAPACITY, seed=1)


def warm_writeback_cycles(scheme, addr=0x1000):
    """Blocking cycles of a write-back whose metadata is fully cached."""
    scheme.writeback(0, addr, payload(1))  # warm the path
    return scheme.writeback(100_000, addr, payload(2))


class TestWritebackBlocking:
    def test_every_design_pays_encryption_and_hmac(self, config):
        # aes (216) + data HMAC (80) are the floor for all designs.
        floor = config.aes_cycles + config.security.hmac_latency_cycles
        for name in ("no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"):
            assert warm_writeback_cycles(fresh(name, config)) >= floor, name

    def test_chain_designs_pay_serial_hmacs(self, config):
        """SC / Osiris Plus / cc-NVM w/o DS recompute the path serially:
        one 80-cycle HMAC per tree level (4 on the 1 MB device)."""
        chain = 4 * config.security.hmac_latency_cycles
        base = config.aes_cycles + config.security.hmac_latency_cycles
        for name in ("sc", "osiris_plus", "ccnvm_no_ds"):
            cycles = warm_writeback_cycles(fresh(name, config))
            assert cycles >= base + chain, name

    def test_ccnvm_blocks_only_for_queue_inserts(self, config):
        """Fully cached path: cc-NVM pays the counter-cache hit, the CAM
        inserts for the 4-level path, and the shared crypto — no HMAC
        chain."""
        scheme = fresh("ccnvm", config)
        base = config.aes_cycles + config.security.hmac_latency_cycles
        meta_hit = config.security.meta_cache.hit_latency
        inserts = config.epoch.dirty_queue_lookup_cycles * scheme.layout.root_level
        cycles = warm_writeback_cycles(scheme)
        assert cycles == base + meta_hit + inserts

    def test_no_cc_is_the_floor(self, config):
        baseline = warm_writeback_cycles(fresh("no_cc", config))
        for name in ("sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"):
            assert warm_writeback_cycles(fresh(name, config)) > baseline, name

    def test_cold_path_fetch_charged(self, config):
        """A metadata miss adds NVM reads + verification to the blocking."""
        scheme = fresh("ccnvm", config)
        cold = scheme.writeback(0, 0x1000, payload(1))
        warm = scheme.writeback(100_000, 0x1000, payload(2))
        assert cold > warm + config.nvm_read_cycles


class TestBusyUntil:
    def test_back_to_back_writebacks_serialize(self, config):
        scheme = fresh("sc", config)
        scheme.writeback(0, 0x1000, payload(1))
        first_free = scheme.busy_until
        blocking = scheme.writeback(0, 0x2000, payload(2))
        # The second write-back could not start before the first finished.
        assert blocking >= first_free

    def test_idle_gap_absorbs_busy(self, config):
        scheme = fresh("sc", config)
        scheme.writeback(0, 0x1000, payload(1))
        later = scheme.busy_until + 10_000
        blocking = scheme.writeback(later, 0x1000, payload(2))
        assert blocking < scheme.busy_until - later + 10_000

    def test_drain_extends_busy_and_hard_cycles(self, config):
        scheme = fresh("ccnvm", config.with_epoch(update_limit=2))
        t = 0
        for i in range(2):  # second update of the line reaches N=2
            scheme.writeback(t, 0x1000, payload(i))
            t += 100_000
        assert scheme.queue.drains_by_trigger()["update_limit"] >= 1
        # The drain's cycles were flagged unhideable.
        assert scheme.writeback_hard_cycles > 0

    def test_crash_resets_busy(self, config):
        scheme = fresh("ccnvm", config)
        scheme.writeback(0, 0x1000, payload(1))
        scheme.crash()
        assert scheme.busy_until == 0


class TestReadTiming:
    def test_counter_hit_overlaps_otp_with_data_read(self, config):
        scheme = fresh("ccnvm", config)
        scheme.writeback(0, 0x1000, payload(1))
        start = 200_000
        _, done = scheme.read(start, 0x1000)
        # Counter cached: completion = max(data read, hit + aes).
        expected = start + max(
            config.nvm_read_cycles,
            config.security.meta_cache.hit_latency + config.aes_cycles,
        )
        assert done == expected

    def test_counter_miss_serializes_walk_before_otp(self, config):
        scheme = fresh("ccnvm", config)
        scheme.writeback(0, 0x1000, payload(1))
        scheme.flush()
        scheme.meta.crash()  # force a verified walk on the next read
        start = 300_000
        _, done = scheme.read(start, 0x1000)
        assert done > start + config.nvm_read_cycles + config.aes_cycles

    def test_reads_respect_busy_until(self, config):
        scheme = fresh("ccnvm", config)
        scheme.writeback(0, 0x1000, payload(1))
        scheme.busy_until = 1_000_000
        _, done = scheme.read(0, 0x1000)
        assert done > 1_000_000


class TestStatisticsSurface:
    def test_blocking_distribution_recorded(self, config):
        scheme = fresh("ccnvm", config)
        scheme.writeback(0, 0x1000, payload(1))
        dist = scheme.stats.distribution("writeback_blocking_cycles")
        assert dist.count == 1
        assert dist.mean > 0

    def test_warmup_resets_measured_statistics(self, config):
        trace = synthetic.hotspot(
            length=400, footprint=1 << 15, write_ratio=0.5, seed=2
        )
        warm = run_simulation(
            "ccnvm", trace, config, SMALL_CAPACITY, warmup_fraction=0.5
        )
        cold = run_simulation("ccnvm", trace, config, SMALL_CAPACITY)
        # The measured region is half the trace: fewer instructions.
        assert warm.instructions < cold.instructions
        assert warm.nvm_writes < cold.nvm_writes

    def test_warmup_fraction_validated(self, config):
        trace = synthetic.hotspot(length=10, footprint=1 << 14, seed=1)
        with pytest.raises(ValueError):
            run_simulation("ccnvm", trace, config, SMALL_CAPACITY, warmup_fraction=1.0)
