"""Unit tests for the service circuit breaker (fake clock, no IO)."""

import pytest

from repro.serve.breaker import CircuitBreaker, ServiceDegradedError


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)


class TestStateMachine:
    def test_stays_closed_below_threshold(self, breaker):
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        # A success resets the consecutive count entirely.
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_trips_at_threshold_and_refuses(self, breaker):
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.trips == 1
        assert not breaker.allow()
        assert breaker.retry_after() == pytest.approx(10.0)

    def test_cooldown_admits_exactly_one_probe(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()  # the probe
        assert breaker.state == "half_open"
        assert breaker.probes == 1
        # Nobody else gets in while the probe is in flight.
        assert not breaker.allow()
        assert not breaker.allow()

    def test_probe_success_closes(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()
        assert breaker.retry_after() == 0.0

    def test_probe_failure_retrips_with_fresh_cooldown(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()  # the probe fails
        assert breaker.state == "open"
        assert breaker.trips == 2
        assert breaker.retry_after() == pytest.approx(10.0)
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_success_in_closed_does_not_touch_state(self, breaker):
        breaker.record_success()
        assert breaker.state == "closed" and breaker.opened_at is None

    def test_threshold_must_be_positive(self, clock):
        with pytest.raises(ValueError, match=">= 1"):
            CircuitBreaker(threshold=0, clock=clock)

    def test_snapshot_reports_the_whole_picture(self, breaker, clock):
        for _ in range(3):
            breaker.record_failure()
        clock.advance(4.0)
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["threshold"] == 3
        assert snap["consecutive_failures"] == 3
        assert snap["retry_after"] == pytest.approx(6.0)
        assert snap["trips"] == 1 and snap["probes"] == 0


class TestDegradedError:
    def test_carries_a_clamped_retry_after(self):
        err = ServiceDegradedError(4.2)
        assert err.retry_after == pytest.approx(4.2)
        assert "cache-only" in str(err)
        assert ServiceDegradedError(-1.0).retry_after == 0.0
