"""Unit tests for the serve wire protocol, queue and daemon lock."""

import json
import subprocess
import sys

import pytest

from repro.serve.lock import DaemonLock, DaemonRunningError
from repro.serve.protocol import (
    SCHEMA_VERSION,
    ProtocolError,
    error_body,
    event_body,
    is_terminal_event,
    job_body,
    sse_format,
    sse_parse,
    stable_result_body,
    submit_body,
    validate_submit,
    wire_decode,
    wire_encode,
)
from repro.serve.queue import (
    QueueFullError,
    QuotaExceededError,
    ShardedQueue,
)


class TestWireFormat:
    def test_encode_is_canonical(self):
        body = {"b": 2, "a": 1, "schema_version": SCHEMA_VERSION}
        assert wire_encode(body) == b'{"a":1,"b":2,"schema_version":1}\n'

    def test_round_trip(self):
        body = submit_body("evaluate", client="c", params={"length": 400})
        assert wire_decode(wire_encode(body)) == body

    def test_encoding_is_byte_stable_across_key_order(self):
        one = wire_encode({"schema_version": 1, "x": 1, "y": 2})
        two = wire_encode({"y": 2, "x": 1, "schema_version": 1})
        assert one == two

    def test_decode_rejects_wrong_schema_version(self):
        with pytest.raises(ProtocolError, match="schema"):
            wire_decode(json.dumps({"schema_version": 99}))

    def test_decode_rejects_non_object(self):
        with pytest.raises(ProtocolError):
            wire_decode(b"[1,2]")
        with pytest.raises(ProtocolError):
            wire_decode(b"{torn")

    def test_stable_result_body_strips_timing_only(self):
        body = {"schema_version": 1, "result": {"x": 1}, "timing": {"s": 0.5}}
        assert stable_result_body(body) == {
            "schema_version": 1, "result": {"x": 1}
        }


class TestSubmitValidation:
    def test_unknown_kind(self):
        with pytest.raises(ProtocolError, match="kind"):
            validate_submit({"kind": "frobnicate"})

    def test_specs_kind_needs_specs(self):
        with pytest.raises(ProtocolError, match="specs"):
            validate_submit({"kind": "specs", "specs": []})

    def test_normalizes_defaults(self):
        body = validate_submit({"kind": "evaluate"})
        assert body["client"] == "anonymous"
        assert body["priority"] == 0
        assert body["schema_version"] == SCHEMA_VERSION

    def test_error_and_job_bodies_carry_schema_version(self):
        assert error_body(429, "over quota")["schema_version"] == SCHEMA_VERSION
        job = job_body("j1", "k" * 64, "queued", "specs", 4)
        assert job["schema_version"] == SCHEMA_VERSION
        with pytest.raises(ProtocolError):
            job_body("j1", "k", "exploded", "specs", 4)


class TestSse:
    def test_format_and_parse_round_trip(self):
        events = [
            event_body("queued", "j1", 1, {"a": 1}),
            event_body("progress", "j1", 2, {"done": 1, "total": 2}),
            event_body("done", "j1", 3, {"summary": "ok"}),
        ]
        stream = b"".join(sse_format(e) for e in events)
        parsed = list(sse_parse(stream.decode().splitlines(keepends=True)))
        assert parsed == events

    def test_terminal_detection(self):
        assert is_terminal_event(event_body("done", "j", 1, {}))
        assert is_terminal_event(event_body("failed", "j", 1, {}))
        assert not is_terminal_event(event_body("progress", "j", 1, {}))

    def test_parse_skips_comment_keepalives(self):
        frame = b": keepalive\n\n" + sse_format(event_body("done", "j", 1, {}))
        parsed = list(sse_parse(frame.decode().splitlines(keepends=True)))
        assert len(parsed) == 1


class TestShardedQueue:
    def test_same_key_routes_to_same_shard(self):
        queue = ShardedQueue(shards=4)
        key = "deadbeef" + "0" * 56
        assert queue.shard_of(key) == queue.shard_of(key)
        assert 0 <= queue.shard_of(key) < 4

    def test_priority_order_within_shard(self):
        queue = ShardedQueue(shards=1)
        queue.push("0" * 64, 5, "later")
        queue.push("1" * 64, 0, "sooner")
        queue.push("2" * 64, 0, "second")
        assert queue.pop(0) == "sooner"
        assert queue.pop(0) == "second"
        assert queue.pop(0) == "later"
        assert queue.pop(0) is None

    def test_quota_charges_and_credits(self):
        queue = ShardedQueue(shards=1, quota=2)
        queue.admit("alice")
        queue.admit("alice")
        with pytest.raises(QuotaExceededError, match="alice"):
            queue.admit("alice")
        queue.admit("bob")  # other clients unaffected
        queue.credit("alice")
        queue.admit("alice")  # freed slot is reusable
        snapshot = queue.snapshot()
        assert snapshot["clients"] == {"alice": 2, "bob": 1}
        assert snapshot["in_flight"] == 3

    def test_global_depth_bound(self):
        queue = ShardedQueue(shards=1, quota=10, max_depth=2)
        queue.admit("a")
        queue.admit("b")
        with pytest.raises(QueueFullError):
            queue.admit("c")


class TestDaemonLock:
    def test_acquire_writes_pidfile_and_releases(self, tmp_path):
        lock = DaemonLock(tmp_path)
        with lock:
            assert lock.holder() == lock.pid
        assert lock.holder() is None

    def test_live_daemon_is_refused(self, tmp_path):
        first = DaemonLock(tmp_path).acquire()
        try:
            with pytest.raises(DaemonRunningError, match="already serves"):
                DaemonLock(tmp_path).acquire()
        finally:
            first.release()

    def test_stale_lock_from_dead_pid_is_broken(self, tmp_path):
        # A real process that has already exited: its pid is guaranteed
        # dead (we reaped it), unlike a guessed number.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        (tmp_path / "serve.lock").write_text(f"{proc.pid}\n")
        lock = DaemonLock(tmp_path).acquire()
        assert lock.holder() == lock.pid
        lock.release()

    def test_torn_lock_file_is_broken(self, tmp_path):
        (tmp_path / "serve.lock").write_text("not a pid")
        lock = DaemonLock(tmp_path).acquire()
        assert lock.holder() == lock.pid
        lock.release()

    def test_release_leaves_foreign_lock_alone(self, tmp_path):
        lock = DaemonLock(tmp_path).acquire()
        (tmp_path / "serve.lock").write_text("424242\n")
        lock.release()
        assert (tmp_path / "serve.lock").read_text() == "424242\n"
