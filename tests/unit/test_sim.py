"""Unit tests for the trace-driven CPU, hierarchy and runner."""

import pytest

from repro.core.schemes import create_scheme
from repro.sim.cpu import TraceCPU
from repro.sim.runner import run_design_comparison, run_simulation
from repro.sim.system import MemoryHierarchy
from repro.sim.trace import READ, WRITE, Trace, TraceRecord
from repro.workloads import synthetic
from tests.conftest import SMALL_CAPACITY


def make_machine(config, scheme_name="ccnvm"):
    scheme = create_scheme(scheme_name, config, SMALL_CAPACITY, seed=1)
    memory = MemoryHierarchy(config, scheme)
    return scheme, memory


class TestHierarchyFunctional:
    def test_write_then_read_hits_l1(self, config):
        _, memory = make_machine(config)
        memory.write(0, 0, bytes([1]) * 64)
        data, latency, level = memory.read(1, 0)
        assert data == bytes([1]) * 64
        assert level == "l1"
        assert latency == config.l1.hit_latency

    def test_miss_goes_to_memory(self, config):
        _, memory = make_machine(config)
        data, latency, level = memory.read(0, 0x8000)
        assert level == "mem"
        assert latency > config.nvm_read_cycles
        assert data == bytes(64)  # genesis zeros

    def test_l2_hit_after_l1_eviction(self, config):
        _, memory = make_machine(config)
        memory.read(0, 0)
        # Blow L1 (1 KB, 16 lines) without blowing L2 (4 KB, 64 lines).
        for i in range(1, 33):
            memory.read(0, i * 64)
        __, _, level = memory.read(0, 0)
        assert level == "l2"

    def test_value_survives_full_eviction(self, config):
        _, memory = make_machine(config)
        memory.write(0, 0, bytes([0xAB]) * 64)
        # Evict through both levels: round-trips through the scheme.
        for i in range(1, 200):
            memory.write(i, i * 64, bytes([i % 256]) * 64)
        data, _, level = memory.read(10 ** 6, 0)
        assert level == "mem"
        assert data == bytes([0xAB]) * 64

    def test_writeback_counts(self, config):
        scheme, memory = make_machine(config)
        for i in range(200):
            memory.write(i * 1000, i * 64)  # now, addr
        memory.flush()
        assert memory.stats.counter("llc_writebacks").value > 0
        assert scheme.nvm.writes_by_region().get("data", 0) > 0

    def test_store_payload_fabricated_when_missing(self, config):
        _, memory = make_machine(config)
        memory.write(0, 0x40)
        data, _, _ = memory.read(1, 0x40)
        assert len(data) == 64
        assert data != bytes(64)

    def test_rejects_partial_store(self, config):
        _, memory = make_machine(config)
        with pytest.raises(ValueError):
            memory.write(0, 0, b"short")

    def test_persist_line_moves_data_to_nvm(self, config):
        scheme, memory = make_machine(config)
        memory.write(0, 0, bytes([9]) * 64)
        assert scheme.nvm.writes_by_region().get("data", 0) == 0
        memory.persist_line(1, 0)
        assert scheme.nvm.writes_by_region()["data"] == 1
        # Line stays cached and clean.
        assert memory.l1.probe(0) is not None
        assert not memory.l1.probe(0).dirty

    def test_persist_untouched_line_is_noop(self, config):
        scheme, memory = make_machine(config)
        assert memory.persist_line(0, 0x40) == 0


class TestTraceCPU:
    def test_pure_compute_ipc_is_peak(self, config):
        _, memory = make_machine(config)
        cpu = TraceCPU(config, memory)
        # One L1-resident address accessed repeatedly: stalls ~ hit latency.
        trace = Trace("t", [TraceRecord(READ, 0, 100) for _ in range(50)])
        result = cpu.run(trace)
        assert result.ipc > config.cpu.peak_ipc * 0.5

    def test_memory_bound_ipc_is_low(self, config):
        _, memory = make_machine(config)
        cpu = TraceCPU(config, memory)
        trace = synthetic.random_uniform(
            length=300, footprint=1 << 19, mem_gap=1, seed=0
        )
        result = cpu.run(trace)
        assert result.ipc < 0.5

    def test_counts(self, config):
        _, memory = make_machine(config)
        cpu = TraceCPU(config, memory)
        trace = Trace(
            "t",
            [TraceRecord(READ, 0, 5), TraceRecord(WRITE, 64, 5), TraceRecord(READ, 0, 5)],
        )
        result = cpu.run(trace)
        assert result.reads == 2
        assert result.writes == 1
        assert result.instructions == 18
        assert result.cycles > 0

    def test_served_by_stats(self, config):
        _, memory = make_machine(config)
        cpu = TraceCPU(config, memory)
        cpu.run(Trace("t", [TraceRecord(READ, 0, 0), TraceRecord(READ, 0, 0)]))
        served = cpu.stats.group("served_by")
        assert served.counter("mem").value == 1
        assert served.counter("l1").value == 1


class TestRunner:
    def test_run_simulation_result_fields(self, config):
        trace = synthetic.hotspot(
            length=400, footprint=1 << 16, write_ratio=0.4, seed=1, name="wl"
        )
        result = run_simulation("ccnvm", trace, config, SMALL_CAPACITY)
        assert result.scheme == "ccnvm"
        assert result.workload == "wl"
        assert result.label == "cc-NVM"
        assert result.ipc > 0
        assert result.nvm_writes > 0
        assert result.llc_writebacks > 0
        assert result.epochs >= 1
        assert sum(result.drains_by_trigger.values()) == result.epochs
        assert result.counter_hmacs > 0
        assert result.data_hmacs > 0

    def test_simulation_is_deterministic(self, config):
        trace = synthetic.hotspot(
            length=300, footprint=1 << 16, write_ratio=0.3, seed=2
        )
        a = run_simulation("ccnvm", trace, config, SMALL_CAPACITY, seed=7)
        b = run_simulation("ccnvm", trace, config, SMALL_CAPACITY, seed=7)
        assert a.cycles == b.cycles
        assert a.nvm_writes == b.nvm_writes
        assert a.counter_hmacs == b.counter_hmacs

    def test_comparison_includes_baseline(self, config):
        trace = synthetic.sequential_stream(
            length=300, footprint=1 << 16, write_ratio=0.5, seed=1
        )
        cmp = run_design_comparison(
            trace, schemes=["ccnvm"], config=config, data_capacity=SMALL_CAPACITY
        )
        assert set(cmp.results) == {"no_cc", "ccnvm"}
        assert cmp.normalized_ipc("no_cc") == 1.0
        assert cmp.normalized_writes("no_cc") == 1.0

    def test_comparison_orderings(self, config):
        trace = synthetic.sequential_stream(
            length=600, footprint=1 << 17, write_ratio=0.5, seed=1
        )
        cmp = run_design_comparison(
            trace, config=config, data_capacity=SMALL_CAPACITY
        )
        # The paper's first-order shape on a write-heavy stream.
        assert cmp.normalized_writes("sc") > 2.5
        assert cmp.normalized_writes("ccnvm") < cmp.normalized_writes("sc")
        assert cmp.normalized_ipc("ccnvm") >= cmp.normalized_ipc("ccnvm_no_ds")
        assert cmp.normalized_ipc("ccnvm") <= 1.01
