"""Unit tests for the statistics registry."""

from repro.common.stats import Counter, Distribution, StatGroup


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_inc_default(self):
        c = Counter("c")
        c.inc()
        c.inc()
        assert c.value == 2

    def test_inc_amount(self):
        c = Counter("c")
        c.inc(10)
        c.inc(5)
        assert c.value == 15

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestDistribution:
    def test_empty_mean_is_zero(self):
        assert Distribution("d").mean == 0.0

    def test_empty_percentile_is_zero(self):
        assert Distribution("d").percentile(50) == 0.0

    def test_empty_as_dict_is_just_n(self):
        assert Distribution("d").as_dict() == {"n": 0}

    def test_single_sample_percentiles_collapse(self):
        d = Distribution("d")
        d.sample(7)
        assert d.percentile(50) == 7
        assert d.percentile(99) == 7

    def test_percentiles_clamped_to_observed_range(self):
        d = Distribution("d")
        for v in (5, 5, 5, 5):
            d.sample(v)
        # All samples share one [4, 8) bucket; interpolation must not
        # report a value outside [min, max].
        assert d.percentile(50) == 5
        assert d.percentile(95) == 5

    def test_percentile_ordering_and_bounds(self):
        d = Distribution("d")
        for v in range(1, 101):
            d.sample(v)
        p50, p95, p99 = d.percentile(50), d.percentile(95), d.percentile(99)
        assert d.min <= p50 <= p95 <= p99 <= d.max
        # Bucketed percentiles are approximate, but p50 of 1..100 must
        # land in the bucket holding rank 50 ([32, 64)).
        assert 32 <= p50 < 64
        assert p99 > 64

    def test_percentile_zero_bucket(self):
        d = Distribution("d")
        for v in (0, 0, 0, 10):
            d.sample(v)
        assert d.percentile(50) < 1
        assert d.percentile(99) == 10

    def test_as_dict_exports_summary(self):
        d = Distribution("d")
        for v in (1, 2, 3, 4):
            d.sample(v)
        summary = d.as_dict()
        assert summary["n"] == 4
        assert summary["min"] == 1
        assert summary["max"] == 4
        assert summary["mean"] == 2.5
        assert set(summary) == {"n", "min", "max", "mean", "p50", "p95", "p99"}

    def test_reset_clears_histogram(self):
        d = Distribution("d")
        d.sample(100)
        d.reset()
        assert sum(d.buckets) == 0
        assert d.percentile(50) == 0.0

    def test_single_sample(self):
        d = Distribution("d")
        d.sample(5.0)
        assert d.count == 1
        assert d.mean == 5.0
        assert d.min == 5.0
        assert d.max == 5.0

    def test_aggregates(self):
        d = Distribution("d")
        for v in (1, 2, 3, 4):
            d.sample(v)
        assert d.count == 4
        assert d.mean == 2.5
        assert d.min == 1
        assert d.max == 4

    def test_reset(self):
        d = Distribution("d")
        d.sample(10)
        d.reset()
        assert d.count == 0
        assert d.mean == 0.0


class TestStatGroup:
    def test_counter_created_once(self):
        g = StatGroup("g")
        assert g.counter("x") is g.counter("x")

    def test_distribution_created_once(self):
        g = StatGroup("g")
        assert g.distribution("x") is g.distribution("x")

    def test_child_group_created_once(self):
        g = StatGroup("g")
        assert g.group("child") is g.group("child")

    def test_walk_produces_dotted_paths(self):
        g = StatGroup("system")
        g.counter("cycles").inc(7)
        g.group("llc").counter("misses").inc(3)
        flat = g.as_dict()
        assert flat["system.cycles"] == 7
        assert flat["system.llc.misses"] == 3

    def test_nested_reset(self):
        g = StatGroup("sys")
        g.counter("a").inc(1)
        child = g.group("sub")
        child.counter("b").inc(2)
        child.distribution("d").sample(9)
        g.reset()
        assert g.counter("a").value == 0
        assert child.counter("b").value == 0
        assert child.distribution("d").count == 0

    def test_walk_three_level_nesting(self):
        g = StatGroup("system")
        g.group("mem").group("nvm").counter("writes").inc(11)
        g.group("mem").distribution("lat").sample(4)
        paths = dict(g.walk())
        assert paths["system.mem.nvm.writes"].value == 11
        assert paths["system.mem.lat"].count == 1

    def test_report_contains_values(self):
        g = StatGroup("top")
        g.counter("hits").inc(42)
        g.distribution("lat").sample(3)
        text = g.report()
        assert "top.hits" in text
        assert "42" in text
        assert "top.lat" in text
        assert "p50=" in text

    def test_report_empty_distribution_renders_n0_only(self):
        g = StatGroup("top")
        g.distribution("never_sampled")
        (line,) = g.report().splitlines()
        assert "top.never_sampled" in line
        assert line.rstrip().endswith("n=0")
        assert "inf" not in line
        assert "min=" not in line
        assert "max=" not in line

    def test_as_dict_distribution_exports_summary(self):
        g = StatGroup("g")
        d = g.distribution("lat")
        d.sample(2)
        d.sample(4)
        flat = g.as_dict()
        assert flat["g.lat"]["n"] == 2
        assert flat["g.lat"]["mean"] == 3.0
        assert flat["g.lat"]["min"] == 2
        assert flat["g.lat"]["max"] == 4

    def test_as_dict_empty_distribution(self):
        g = StatGroup("g")
        g.distribution("lat")
        assert g.as_dict()["g.lat"] == {"n": 0}
