"""Unit tests for the statistics registry."""

from repro.common.stats import Counter, Distribution, StatGroup


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_inc_default(self):
        c = Counter("c")
        c.inc()
        c.inc()
        assert c.value == 2

    def test_inc_amount(self):
        c = Counter("c")
        c.inc(10)
        c.inc(5)
        assert c.value == 15

    def test_reset(self):
        c = Counter("c")
        c.inc(3)
        c.reset()
        assert c.value == 0


class TestDistribution:
    def test_empty_mean_is_zero(self):
        assert Distribution("d").mean == 0.0

    def test_single_sample(self):
        d = Distribution("d")
        d.sample(5.0)
        assert d.count == 1
        assert d.mean == 5.0
        assert d.min == 5.0
        assert d.max == 5.0

    def test_aggregates(self):
        d = Distribution("d")
        for v in (1, 2, 3, 4):
            d.sample(v)
        assert d.count == 4
        assert d.mean == 2.5
        assert d.min == 1
        assert d.max == 4

    def test_reset(self):
        d = Distribution("d")
        d.sample(10)
        d.reset()
        assert d.count == 0
        assert d.mean == 0.0


class TestStatGroup:
    def test_counter_created_once(self):
        g = StatGroup("g")
        assert g.counter("x") is g.counter("x")

    def test_distribution_created_once(self):
        g = StatGroup("g")
        assert g.distribution("x") is g.distribution("x")

    def test_child_group_created_once(self):
        g = StatGroup("g")
        assert g.group("child") is g.group("child")

    def test_walk_produces_dotted_paths(self):
        g = StatGroup("system")
        g.counter("cycles").inc(7)
        g.group("llc").counter("misses").inc(3)
        flat = g.as_dict()
        assert flat["system.cycles"] == 7
        assert flat["system.llc.misses"] == 3

    def test_nested_reset(self):
        g = StatGroup("sys")
        g.counter("a").inc(1)
        child = g.group("sub")
        child.counter("b").inc(2)
        child.distribution("d").sample(9)
        g.reset()
        assert g.counter("a").value == 0
        assert child.counter("b").value == 0
        assert child.distribution("d").count == 0

    def test_report_contains_values(self):
        g = StatGroup("top")
        g.counter("hits").inc(42)
        g.distribution("lat").sample(3)
        text = g.report()
        assert "top.hits" in text
        assert "42" in text
        assert "top.lat" in text

    def test_as_dict_distribution_reports_mean(self):
        g = StatGroup("g")
        d = g.distribution("lat")
        d.sample(2)
        d.sample(4)
        assert g.as_dict()["g.lat"] == 3.0
