"""Unit tests for the TCB's persistent registers."""

import pytest

from repro.common.constants import CACHE_LINE_SIZE, HMAC_SIZE
from repro.core.tcb import TCB
from repro.crypto.prf import SecretKey


ENC = SecretKey.from_seed("tcb-enc")
MAC = SecretKey.from_seed("tcb-mac")
GENESIS = bytes(range(64))


@pytest.fixture
def tcb():
    return TCB(ENC, MAC, GENESIS)


class TestConstruction:
    def test_roots_start_at_genesis(self, tcb):
        assert tcb.root_new == GENESIS
        assert tcb.root_old == GENESIS
        assert tcb.nwb == 0

    def test_rejects_short_root(self):
        with pytest.raises(ValueError):
            TCB(ENC, MAC, b"short")

    def test_keys_held(self, tcb):
        assert tcb.encryption_key == ENC
        assert tcb.hmac_key == MAC


class TestRootNew:
    def test_update_single_slot(self, tcb):
        code = bytes([0xEE]) * HMAC_SIZE
        tcb.update_root_new(1, code)
        assert tcb.root_new[16:32] == code
        assert tcb.root_new[:16] == GENESIS[:16]  # other slots untouched
        assert tcb.root_old == GENESIS  # old register unaffected

    def test_update_rejects_bad_slot(self, tcb):
        with pytest.raises(ValueError):
            tcb.update_root_new(4, bytes(HMAC_SIZE))

    def test_set_root_new_wholesale(self, tcb):
        root = bytes([7]) * CACHE_LINE_SIZE
        tcb.set_root_new(root)
        assert tcb.root_new == root

    def test_set_root_new_rejects_wrong_width(self, tcb):
        with pytest.raises(ValueError):
            tcb.set_root_new(bytes(32))


class TestCommit:
    def test_commit_advances_root_old(self, tcb):
        tcb.update_root_new(0, bytes([1]) * HMAC_SIZE)
        tcb.count_writeback()
        tcb.count_writeback()
        tcb.commit_root()
        assert tcb.root_old == tcb.root_new
        assert tcb.nwb == 0

    def test_set_roots_aligns_everything(self, tcb):
        tcb.count_writeback()
        root = bytes([9]) * CACHE_LINE_SIZE
        tcb.set_roots(root)
        assert tcb.root_new == root
        assert tcb.root_old == root
        assert tcb.nwb == 0


class TestPersistence:
    def test_registers_survive_crash(self, tcb):
        tcb.update_root_new(2, bytes([3]) * HMAC_SIZE)
        tcb.count_writeback()
        before = (tcb.root_new, tcb.root_old, tcb.nwb)
        tcb.crash()
        assert (tcb.root_new, tcb.root_old, tcb.nwb) == before

    def test_nwb_counts_writebacks(self, tcb):
        for _ in range(5):
            tcb.count_writeback()
        assert tcb.nwb == 5


class TestCrashSplit:
    """The persistent/volatile split: exactly the declared persistent
    registers survive ``crash()``; everything cache-resident is dropped
    at the scheme level."""

    def test_extension_registers_survive_crash(self, tcb):
        tcb.log_counter_update(0x40)
        tcb.log_counter_update(0x40)
        tcb.log_counter_update(0x80)
        tcb.crash()
        assert tcb.counter_log == {0x40: 2, 0x80: 1}

    def test_recovery_pending_survives_crash(self, tcb):
        tcb.begin_recovery()
        tcb.crash()
        assert tcb.recovery_pending

    def test_set_roots_clears_recovery_pending(self, tcb):
        tcb.begin_recovery()
        tcb.set_roots(bytes([4]) * CACHE_LINE_SIZE)
        assert not tcb.recovery_pending

    def test_declaration_matches_the_crash_contract(self):
        """The @persistence declaration is the crash contract."""
        from repro.common.persistence import persistent_attrs

        assert persistent_attrs(TCB) == frozenset(
            {"root_new", "root_old", "nwb", "counter_log", "recovery_pending"}
        )

    def test_scheme_crash_drops_volatile_keeps_persistent(self):
        from repro import SecureMemory

        mem = SecureMemory(data_capacity=1 << 18)
        mem.store(0x1000, b"survivor")
        mem.persist(0x1000, 64)
        scheme = mem.scheme
        assert scheme.tcb.nwb >= 1  # uncommitted write-backs pending
        assert scheme.meta.dirty_addresses()  # dirty metadata in cache
        roots_before = (scheme.tcb.root_new, scheme.tcb.root_old)
        nwb_before = scheme.tcb.nwb
        mem.crash()
        # volatile domain gone...
        assert scheme.meta.dirty_addresses() == []
        assert scheme.meta.overlay == {}
        # ...persistent registers intact
        assert (scheme.tcb.root_new, scheme.tcb.root_old) == roots_before
        assert scheme.tcb.nwb == nwb_before
        assert mem.recover().success
        assert mem.load(0x1000, 8) == b"survivor"
