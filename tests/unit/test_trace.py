"""Unit tests for trace records and serialization."""

import pytest

from repro.sim.trace import READ, WRITE, Trace, TraceRecord


class TestTraceRecord:
    def test_valid_record(self):
        r = TraceRecord(READ, 0x1000, 5)
        assert r.op == "R"
        assert r.addr == 0x1000
        assert r.icount == 5

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            TraceRecord("X", 0, 0)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            TraceRecord(READ, -1, 0)

    def test_rejects_negative_icount(self):
        with pytest.raises(ValueError):
            TraceRecord(WRITE, 0, -1)


class TestTrace:
    def make(self):
        return Trace(
            "t",
            [
                TraceRecord(READ, 0, 10),
                TraceRecord(WRITE, 64, 5),
                TraceRecord(READ, 0, 0),
                TraceRecord(WRITE, 4096, 2),
            ],
        )

    def test_len_and_iteration(self):
        trace = self.make()
        assert len(trace) == 4
        assert [r.op for r in trace] == ["R", "W", "R", "W"]
        assert trace[1].addr == 64

    def test_instructions_counts_memory_ops(self):
        # icount sum (17) + one instruction per memory reference (4).
        assert self.make().instructions == 21

    def test_write_fraction(self):
        assert self.make().write_fraction == 0.5

    def test_write_fraction_empty(self):
        assert Trace("e", []).write_fraction == 0.0

    def test_footprint_in_lines(self):
        assert self.make().footprint() == 3  # lines 0, 64 and 4096


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        trace = Trace(
            "roundtrip",
            [TraceRecord(READ, 0x40, 3), TraceRecord(WRITE, 0x1000, 0)],
        )
        path = str(tmp_path / "trace.txt")
        trace.dump(path)
        loaded = Trace.load(path)
        assert loaded.name == "roundtrip"
        assert loaded.records == trace.records

    def test_load_with_explicit_name(self, tmp_path):
        path = str(tmp_path / "t.txt")
        Trace("orig", [TraceRecord(READ, 0, 0)]).dump(path)
        assert Trace.load(path, name="renamed").name == "renamed"

    def test_load_skips_blank_and_comment_lines(self, tmp_path):
        path = str(tmp_path / "t.txt")
        with open(path, "w") as f:
            f.write("# a comment\n\nR 0x40 3\n\nW 0x80 1\n")
        loaded = Trace.load(path)
        assert len(loaded) == 2
        assert loaded[0].addr == 0x40


class TestLackeyImport:
    LACKEY = """==123== Lackey, an example tool
I  04000000,4
I  04000004,4
 L 04016b80,8
I  04000008,4
 S 04016b88,8
 M 04016b90,4
garbage line
I  0400000c,3
"""

    def test_import(self, tmp_path):
        path = str(tmp_path / "lackey.txt")
        with open(path, "w") as f:
            f.write(self.LACKEY)
        trace = Trace.from_lackey(path, name="prog")
        assert trace.name == "prog"
        ops = [(r.op, r.addr, r.icount) for r in trace]
        assert ops == [
            (READ, 0x04016B80, 2),   # two I lines before the load
            (WRITE, 0x04016B88, 1),  # one I line before the store
            (READ, 0x04016B90, 0),   # modify: load...
            (WRITE, 0x04016B90, 0),  # ...then store, zero gap
        ]

    def test_import_skips_junk(self, tmp_path):
        path = str(tmp_path / "junk.txt")
        with open(path, "w") as f:
            f.write("==1== banner\nnot,a,line\n L zzzz,8\n L 40,8\n")
        trace = Trace.from_lackey(path)
        assert len(trace) == 1
        assert trace[0].addr == 0x40

    def test_imported_trace_simulates(self, tmp_path):
        from repro.sim.runner import run_simulation
        from tests.conftest import SMALL_CAPACITY, small_config

        path = str(tmp_path / "lackey.txt")
        with open(path, "w") as f:
            for i in range(50):
                f.write("I  04000000,4\n")
                f.write(f" S {i * 64:07x},8\n")
        trace = Trace.from_lackey(path, name="imported")
        result = run_simulation("ccnvm", trace, small_config(), SMALL_CAPACITY)
        assert result.llc_writebacks >= 0
        assert result.instructions == trace.instructions
