"""Unit tests for the ACE-style bounded workload enumeration.

The load-bearing claim: :func:`enumerate_ace` hits every equivalence
class of the brute-force (address assignment, fence mask) space exactly
once — verified here by canonicalizing the *entire* raw space for every
k <= 3 and comparing against the closed form Bell(k) * 2^k.
"""

import pytest

from repro.core.schemes import create_scheme
from repro.crashsim.workload import record_workload
from repro.trafficgen.ace import (
    ACE_BASE,
    MAX_K,
    AceWorkload,
    ace_campaign_config,
    ace_profiles,
    bell,
    canonical_count,
    canonical_pattern,
    dedup_ratio,
    enumerate_ace,
    enumeration_stats,
    growth_strings,
    is_ace_profile,
    parse_profile,
    raw_count,
    raw_workloads,
)

from tests.conftest import TINY_CAPACITY

#: B(1)..B(5) — the textbook Bell numbers.
BELL = {1: 1, 2: 2, 3: 5, 4: 15, 5: 52}


class TestEnumeration:
    @pytest.mark.parametrize("k", sorted(BELL))
    def test_bell_numbers(self, k):
        assert bell(k) == BELL[k]

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_growth_strings_are_canonical_and_complete(self, k):
        strings = growth_strings(k)
        assert len(strings) == bell(k)
        assert len(set(strings)) == len(strings)
        assert strings == sorted(strings)
        for s in strings:
            # Each string is its own canonical form (RGS fixpoint).
            assert canonical_pattern(int(c) for c in s) == s

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_dedup_hits_every_class_exactly_once(self, k):
        """Brute force without dedup vs the deduped enumeration.

        Canonicalizing all k^k * 2^k raw workloads must yield exactly
        the enumerated set, each class exactly once, and the count must
        match the closed form Bell(k) * 2^k.
        """
        raw = list(raw_workloads(k))
        assert len(raw) == raw_count(k) == k**k * 2**k

        classes = {
            (canonical_pattern(assignment), fences)
            for assignment, fences in raw
        }
        enumerated = [(w.pattern, w.fences) for w in enumerate_ace(k)]
        # No duplicates in the enumeration; exact coverage of the classes.
        assert len(enumerated) == len(set(enumerated))
        assert set(enumerated) == classes
        assert len(enumerated) == canonical_count(k) == bell(k) * 2**k

    def test_dedup_ratio_at_k3_clears_the_gate(self):
        # 216 raw / 40 canonical = 5.4x — the acceptance floor is 5x.
        assert raw_count(3) == 216
        assert canonical_count(3) == 40
        assert dedup_ratio(3) == pytest.approx(5.4)
        assert dedup_ratio(3) >= 5

    def test_enumeration_order_is_deterministic(self):
        assert enumerate_ace(2) == enumerate_ace(2)
        assert [w.profile() for w in enumerate_ace(1)] == [
            "ace-k1-0-0",
            "ace-k1-0-1",
        ]

    def test_k_bounds_rejected(self):
        for bad in (0, -1, MAX_K + 1):
            with pytest.raises(ValueError, match="ace k must be"):
                enumerate_ace(bad)

    def test_enumeration_stats_shape(self):
        stats = enumeration_stats(3)
        assert stats == {
            "k": 3,
            "raw_workloads": 216,
            "canonical_workloads": 40,
            "overlap_classes": 5,
            "fence_placements": 8,
            "dedup_ratio": 5.4,
        }


class TestCanonicalPattern:
    def test_relabeling_collapses(self):
        # Any relabeling of the same overlap structure canonicalizes
        # identically.
        assert canonical_pattern([7, 3, 7]) == "010"
        assert canonical_pattern([0x2000, 0x9000, 0x2000]) == "010"
        assert canonical_pattern("zzz") == "000"

    def test_distinct_structures_stay_distinct(self):
        assert canonical_pattern([1, 2, 3]) == "012"
        assert canonical_pattern([1, 1, 3]) != canonical_pattern([1, 3, 3])


class TestProfileRoundTrip:
    def test_every_k3_workload_round_trips(self):
        for workload in enumerate_ace(3):
            assert parse_profile(workload.profile()) == workload

    def test_is_ace_profile(self):
        assert is_ace_profile("ace-k2-01-10")
        assert not is_ace_profile("hotset")
        assert not is_ace_profile("lbm")
        assert not is_ace_profile(None)

    @pytest.mark.parametrize(
        "bad",
        [
            "ace-k3-000",  # missing fence part
            "ace-kX-000-000",  # non-numeric k
            "ace-k9-000000000-000000000",  # k beyond MAX_K
            "ace-k3-00-000",  # pattern too short
            "ace-k3-021-000",  # not a restricted growth string
            "ace-k3-110-000",  # does not start at 0
            "ace-k3-000-002",  # non-binary fence mask
            "ace-k3-000-0000",  # fence mask wrong length
        ],
    )
    def test_malformed_profiles_rejected(self, bad):
        with pytest.raises(
            ValueError, match="malformed ace profile|ace k must be"
        ):
            parse_profile(bad)

    def test_addrs_follow_the_pattern(self):
        workload = AceWorkload(3, "010", "001")
        assert workload.addrs() == [ACE_BASE, ACE_BASE + 64, ACE_BASE]
        assert workload.lines() == 2


class TestCrashsimWiring:
    def test_recorded_trace_covers_the_pattern_and_ignores_steps(self):
        scheme_a = create_scheme("ccnvm", data_capacity=TINY_CAPACITY)
        scheme_b = create_scheme("ccnvm", data_capacity=TINY_CAPACITY)
        profile = "ace-k3-010-000"
        trace_a = record_workload(scheme_a, steps=1, seed=3, profile=profile)
        trace_b = record_workload(scheme_b, steps=99, seed=3, profile=profile)
        # steps is ignored for enumerated workloads: the workload's own
        # length is the whole point.
        assert len(trace_a.units) == len(trace_b.units)
        annotated = {
            op.addr
            for unit in trace_a.units
            for op in unit.ops
            if op.seq in trace_a.annotations
        }
        assert annotated == set(AceWorkload(3, "010", "000").addrs())

    def test_fences_add_persist_work(self):
        unfenced = record_workload(
            create_scheme("ccnvm", data_capacity=TINY_CAPACITY),
            steps=0, seed=3, profile="ace-k3-012-000",
        )
        fenced = record_workload(
            create_scheme("ccnvm", data_capacity=TINY_CAPACITY),
            steps=0, seed=3, profile="ace-k3-012-111",
        )
        # A flush after every write drains metadata that the unfenced
        # variant leaves cached.
        assert len(fenced.units) > len(unfenced.units)


class TestCampaignConfig:
    def test_config_covers_the_full_enumeration(self):
        cfg = ace_campaign_config(2, schemes=("ccnvm", "sc"))
        assert cfg.profiles == tuple(ace_profiles(2))
        assert len(cfg.profiles) == canonical_count(2)
        assert cfg.steps == 2
        assert cfg.window == 2
        assert cfg.shards == 1
        assert cfg.schemes == ("ccnvm", "sc")

    def test_default_schemes_resolve_to_all_six(self):
        cfg = ace_campaign_config(1)
        assert len(cfg.resolved_schemes()) == 6
