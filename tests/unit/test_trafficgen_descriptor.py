"""Unit tests for the workload-descriptor schema and spec wiring.

Two contracts: the :func:`workload_to_dict` round trip is *exact* for
every Figure-5 surrogate (the descriptor can embed any profile without
drift), and a descriptor folded into a :class:`RunSpec` is covered by
the spec hash — semantically equal descriptors share a cache key, any
change re-keys it.
"""

import pytest

from repro.runs.spec import canonical_json, simulation_spec
from repro.trafficgen.descriptor import (
    SCHEMA_VERSION,
    build_trace,
    canonical_descriptor,
    descriptor_digest,
    descriptor_label,
    interleave_descriptor,
    profile_descriptor,
    spec_params,
    trace_descriptor,
    validate_descriptor,
)
from repro.workloads.spec import (
    SPEC_PROFILES,
    spec_trace,
    workload_from_dict,
    workload_to_dict,
)

DIGEST = "ab" * 32


def tenants(weights=(1.0, 3.0)):
    return [
        {"name": "alice", "profile": "lbm", "weight": weights[0]},
        {"name": "bob", "profile": "namd", "weight": weights[1]},
    ]


class TestWorkloadRoundTrip:
    @pytest.mark.parametrize("name", sorted(SPEC_PROFILES))
    def test_every_surrogate_round_trips_exactly(self, name):
        profile = SPEC_PROFILES[name]
        image = workload_to_dict(profile)
        rebuilt = workload_from_dict(image)
        # The recipe round-trips field-for-field...
        assert workload_to_dict(rebuilt) == image
        # ...and the generated trace is identical (description is
        # presentation-only and deliberately not part of the image).
        original = profile.generate(200, seed=5)
        regenerated = rebuilt.generate(200, seed=5)
        assert original.records == regenerated.records

    def test_unknown_fields_rejected(self):
        image = workload_to_dict(SPEC_PROFILES["lbm"])
        image["burstiness"] = 2
        with pytest.raises(ValueError, match="unknown workload fields"):
            workload_from_dict(image)

    def test_missing_required_fields_named(self):
        with pytest.raises(ValueError, match="missing required fields"):
            workload_from_dict({"name": "x"})


class TestValidation:
    def test_profile_descriptor_from_name(self):
        desc = profile_descriptor("lbm")
        assert desc["kind"] == "profile"
        assert desc["version"] == SCHEMA_VERSION
        assert desc["profile"]["name"] == "lbm"
        assert desc["base"] == 0

    def test_profile_descriptor_unknown_name(self):
        with pytest.raises(ValueError, match="unknown profile name"):
            profile_descriptor("mcf")

    def test_canonical_form_applies_defaults(self):
        sparse = {
            "version": SCHEMA_VERSION,
            "kind": "interleave",
            "tenants": tenants(),
        }
        canonical = canonical_descriptor(sparse)
        assert canonical["policy"] == "round_robin"
        assert canonical["burst"] == 8
        # Canonicalizing twice is a fixpoint.
        assert canonical_descriptor(canonical) == canonical

    def test_wrong_version_rejected(self):
        desc = dict(profile_descriptor("lbm"), version=2)
        with pytest.raises(ValueError, match="unsupported version"):
            validate_descriptor(desc)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown kind"):
            validate_descriptor({"version": SCHEMA_VERSION, "kind": "pcap"})

    def test_extra_fields_rejected(self):
        desc = dict(profile_descriptor("lbm"), rate=3)
        with pytest.raises(ValueError, match=r"unknown fields \['rate'\]"):
            validate_descriptor(desc)

    @pytest.mark.parametrize(
        "digest", ["", "zz" * 32, DIGEST.upper(), DIGEST[:40]]
    )
    def test_bad_trace_digest_rejected(self, digest):
        with pytest.raises(ValueError, match="sha256"):
            trace_descriptor(digest, "t", 10)

    def test_trace_descriptor_happy_path(self):
        desc = trace_descriptor(DIGEST, "llc", 10_000, source="jsonl")
        assert desc["digest"] == DIGEST
        assert desc["records"] == 10_000
        assert desc["source"] == "jsonl"

    def test_interleave_needs_two_tenants(self):
        with pytest.raises(ValueError, match="at least 2 tenants"):
            interleave_descriptor(tenants()[:1])

    def test_duplicate_tenant_names_rejected(self):
        pair = tenants()
        pair[1]["name"] = "alice"
        with pytest.raises(ValueError, match="unique"):
            interleave_descriptor(pair)

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError, match="weight must be positive"):
            interleave_descriptor(tenants(weights=(1.0, 0)))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            interleave_descriptor(tenants(), policy="fifo")


class TestIdentity:
    def test_digest_is_stable_and_canonical(self):
        a = descriptor_digest(profile_descriptor("lbm"))
        b = descriptor_digest(profile_descriptor("lbm"))
        assert a == b
        # A semantically different descriptor re-keys.
        assert a != descriptor_digest(profile_descriptor("namd"))
        assert a != descriptor_digest(profile_descriptor("lbm", base=4096))

    def test_label_shape(self):
        desc = profile_descriptor("lbm")
        label = descriptor_label(desc)
        assert label == f"traffic:profile:{descriptor_digest(desc)[:12]}"

    def test_digest_ignores_field_order(self):
        desc = profile_descriptor("gcc")
        shuffled = dict(reversed(list(desc.items())))
        assert descriptor_digest(shuffled) == descriptor_digest(desc)


class TestSpecWiring:
    def test_descriptor_travels_in_params_and_hash(self):
        desc = profile_descriptor("lbm")
        spec = simulation_spec(
            "ccnvm", "", 1000, 1, workload_descriptor=desc
        )
        assert spec.params["workload"] == validate_descriptor(desc)
        assert spec.workload == descriptor_label(desc)
        # Same descriptor → same hash; different descriptor → new key.
        again = simulation_spec(
            "ccnvm", "", 1000, 1, workload_descriptor=profile_descriptor("lbm")
        )
        assert spec.spec_hash() == again.spec_hash()
        other = simulation_spec(
            "ccnvm", "", 1000, 1, workload_descriptor=profile_descriptor("gcc")
        )
        assert spec.spec_hash() != other.spec_hash()

    def test_descriptorless_specs_unchanged(self):
        # The descriptor field must not perturb existing spec hashes.
        spec = simulation_spec("ccnvm", "lbm", 1000, 1)
        assert "workload" not in spec.params

    def test_explicit_workload_name_wins_over_label(self):
        desc = profile_descriptor("lbm")
        spec = simulation_spec(
            "ccnvm", "custom", 1000, 1, workload_descriptor=desc
        )
        assert spec.workload == "custom"

    def test_spec_params_fragment(self):
        desc = profile_descriptor("milc")
        fragment = spec_params(desc)
        assert set(fragment) == {"workload"}
        assert canonical_json(fragment["workload"]) == canonical_json(
            validate_descriptor(desc)
        )


class TestBuildTrace:
    def test_profile_kind_matches_spec_trace(self):
        desc = profile_descriptor("gcc")
        trace = build_trace(desc, 500, 9)
        assert trace.records == spec_trace("gcc", 500, 9).records

    def test_base_offsets_the_stream(self):
        flat = build_trace(profile_descriptor("lbm"), 100, 1)
        raised = build_trace(profile_descriptor("lbm", base=1 << 20), 100, 1)
        assert [r.addr + (1 << 20) for r in flat.records] == [
            r.addr for r in raised.records
        ]

    def test_trace_kind_resolves_through_store(self, tmp_path):
        from repro.trafficgen.ingest import TraceStore

        store = TraceStore(tmp_path)
        source = tmp_path / "s.csv"
        source.write_text("ts,op,addr\n0,W,0\n4,R,64\n")
        desc = store.ingest(source, footprint=4096)
        trace = build_trace(desc, 4, 0, store_root=tmp_path)
        assert len(trace.records) == 4

    def test_interleave_kind_builds_merged_stream(self):
        desc = interleave_descriptor(tenants())
        trace = build_trace(desc, 40, 2)
        assert len(trace.records) == 40
        assert trace.name == "interleave:alice+bob"
