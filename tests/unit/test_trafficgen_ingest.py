"""Unit tests for external-trace ingestion and the content-addressed store.

Satellite contract: every malformed fixture under
``tests/fixtures/traces/`` is rejected with a structured
:class:`TraceFormatError` naming the line number and the offending
field — never a bare stack trace from deep inside a parser.
"""

import json
from pathlib import Path

import pytest

from repro.sim.trace import READ, WRITE
from repro.trafficgen.ingest import (
    DEFAULT_STORE,
    STORE_ENV,
    TraceFormatError,
    TraceStore,
    normalize_addr,
    parse_records,
)

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "traces"

GOOD_CSV = "ts,op,addr\n0,R,0x1000\n5,W,0x1040\n9,read,4096\n"


@pytest.fixture
def store(tmp_path):
    return TraceStore(tmp_path / "store")


class TestMalformedCorpus:
    """Each committed bad fixture → a diagnosis down to line and field."""

    CASES = [
        ("bad_columns.csv", "csv", 1, "latency", "unknown columns"),
        ("out_of_range_addr.csv", "csv", 3, "addr", "outside"),
        ("non_monotonic_ts.csv", "csv", 4, "ts", "goes backwards"),
        ("truncated_tail.csv", "csv", 4, "addr", "truncated row"),
        ("bad_op.csv", "csv", 3, "op", "not in the whitelist"),
        ("truncated_tail.jsonl", "jsonl", 2, "record", "truncated line"),
    ]

    @pytest.mark.parametrize(
        "fixture,fmt,line,field,reason", CASES,
        ids=[c[0] for c in CASES],
    )
    def test_fixture_rejected_with_line_and_field(
        self, store, fixture, fmt, line, field, reason
    ):
        path = FIXTURES / fixture
        with pytest.raises(TraceFormatError) as err:
            store.ingest(path, fmt=fmt)
        exc = err.value
        assert exc.line == line
        assert exc.field == field
        assert reason in exc.reason
        # The message is self-contained: file, line, field, reason.
        assert f"line {line}" in str(exc)
        assert f"field {field!r}" in str(exc)
        assert fixture in str(exc)

    def test_rejected_ingest_leaves_no_store_entries(self, store):
        with pytest.raises(TraceFormatError):
            store.ingest(FIXTURES / "bad_op.csv", fmt="csv")
        assert not list(store.root.glob("*.trace"))
        assert not list(store.root.glob("*.tmp"))

    def test_header_only_csv_is_empty_trace(self, store, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("ts,op,addr\n")
        with pytest.raises(TraceFormatError, match="no references"):
            store.ingest(path)

    def test_missing_header_named(self, store, tmp_path):
        path = tmp_path / "headerless.csv"
        path.write_text("0,R,0x1000\n")
        with pytest.raises(TraceFormatError) as err:
            store.ingest(path)
        assert "unknown columns" in err.value.reason or (
            "missing columns" in err.value.reason
        )


class TestParsers:
    def test_csv_happy_path(self):
        refs = list(parse_records(GOOD_CSV.splitlines(), "csv"))
        assert refs == [
            (READ, 0x1000, 0),
            (WRITE, 0x1040, 5),
            (READ, 4096, 4),
        ]

    def test_csv_skips_blanks_and_comments(self):
        text = "# a comment\nts,op,addr\n\n0,W,64\n"
        assert list(parse_records(text.splitlines(), "csv")) == [(WRITE, 64, 0)]

    def test_jsonl_happy_path(self):
        lines = [
            json.dumps({"ts": 0, "op": "R", "addr": 4096}),
            json.dumps({"ts": 7, "op": "write", "addr": "0x1040"}),
        ]
        assert list(parse_records(lines, "jsonl")) == [
            (READ, 4096, 0),
            (WRITE, 0x1040, 7),
        ]

    def test_jsonl_unknown_field_named(self):
        lines = [json.dumps({"ts": 0, "op": "R", "addr": 0, "tid": 3})]
        with pytest.raises(TraceFormatError) as err:
            list(parse_records(lines, "jsonl"))
        assert err.value.field == "tid"

    def test_lackey_instruction_gap_accumulation(self):
        lines = [
            "I  0400d7d4,8",
            "I  0400d7d8,4",
            " L 0421b510,8",
            " S 0421b510,8",
            " M 0421b540,4",
        ]
        assert list(parse_records(lines, "lackey")) == [
            (READ, 0x0421B510, 2),
            (WRITE, 0x0421B510, 0),
            (WRITE, 0x0421B540, 0),
        ]

    def test_lackey_bad_marker_rejected(self):
        with pytest.raises(TraceFormatError) as err:
            list(parse_records(["X deadbeef,4"], "lackey"))
        assert err.value.field == "op" and err.value.line == 1

    def test_unknown_format_rejected(self):
        with pytest.raises(ValueError, match="unknown trace format"):
            parse_records([], "binary")

    def test_boolean_ts_is_not_an_integer(self):
        lines = [json.dumps({"ts": True, "op": "R", "addr": 0})]
        with pytest.raises(TraceFormatError) as err:
            list(parse_records(lines, "jsonl"))
        assert err.value.field == "ts"


class TestNormalization:
    def test_addresses_fold_onto_lines_in_footprint(self):
        footprint = 4096  # 64 lines
        for addr in (0, 63, 64, 4096, 4096 + 65, 10**12):
            folded = normalize_addr(addr, footprint, base=0)
            assert folded % 64 == 0
            assert 0 <= folded < footprint

    def test_locality_preserved_mod_footprint(self):
        # Two addresses one line apart stay one line apart after folding.
        a = normalize_addr(0x100040, 4096, 0)
        b = normalize_addr(0x100080, 4096, 0)
        assert b - a == 64

    def test_base_offsets_the_window(self):
        assert normalize_addr(0, 4096, base=1 << 20) == 1 << 20


class TestTraceStore:
    def ingest_good(self, store, tmp_path, name="good"):
        path = tmp_path / f"{name}.csv"
        path.write_text(GOOD_CSV)
        return store.ingest(path, footprint=4096)

    def test_ingest_returns_trace_descriptor(self, store, tmp_path):
        desc = self.ingest_good(store, tmp_path)
        assert desc["kind"] == "trace"
        assert desc["records"] == 3
        assert desc["source"] == "csv"
        assert desc["name"] == "good"
        assert store.trace_path(desc["digest"]).exists()
        meta = json.loads(store.meta_path(desc["digest"]).read_text())
        assert meta["records"] == 3
        assert meta["digest"] == desc["digest"]

    def test_reingest_identical_content_is_stable(self, store, tmp_path):
        first = self.ingest_good(store, tmp_path, "one")
        second = self.ingest_good(store, tmp_path, "two")
        # Same normalized content → same digest, one stored trace.
        assert first["digest"] == second["digest"]
        assert len(list(store.root.glob("*.trace"))) == 1

    def test_footprint_changes_rekey_the_digest(self, store, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("ts,op,addr\n0,W,0x1000\n")
        wide = store.ingest(path, footprint=1 << 20)
        narrow = store.ingest(path, footprint=4096)
        assert wide["digest"] != narrow["digest"]

    def test_records_wrap_to_reach_limit(self, store, tmp_path):
        desc = self.ingest_good(store, tmp_path)
        records = list(store.records(desc["digest"], limit=8))
        assert len(records) == 8
        # The cycle repeats the stored stream.
        assert records[0].addr == records[3].addr
        assert records[0].op == records[3].op

    def test_build_trace_materializes_named_trace(self, store, tmp_path):
        desc = self.ingest_good(store, tmp_path)
        trace = store.build_trace(desc, length=5)
        assert trace.name == "good"
        assert len(trace.records) == 5
        for record in trace.records:
            assert record.addr % 64 == 0
            assert record.addr < 4096

    def test_missing_digest_names_the_store(self, store):
        with pytest.raises(ValueError, match="not in the store"):
            list(store.records("0" * 64))

    def test_catalog_lists_digest_sorted_metadata(self, store, tmp_path):
        assert store.catalog() == []
        self.ingest_good(store, tmp_path)
        catalog = store.catalog()
        assert len(catalog) == 1
        assert catalog[0]["records"] == 3

    def test_env_var_selects_the_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_ENV, str(tmp_path / "envstore"))
        assert TraceStore().root == tmp_path / "envstore"
        monkeypatch.delenv(STORE_ENV)
        assert TraceStore().root == Path(DEFAULT_STORE)

    def test_footprint_must_cover_a_line(self, store, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(GOOD_CSV)
        with pytest.raises(ValueError, match="at least one line"):
            store.ingest(path, footprint=32)

    def test_committed_10k_fixture_ingests_clean(self, store):
        desc = store.ingest(FIXTURES / "llc_10k.csv", footprint=1 << 20)
        assert desc["records"] == 10_000
        # Determinism of the committed fixture: the digest is pinned, so
        # any accidental fixture edit (or normalization change) trips
        # loudly here and in CI.
        assert store.ingest(
            FIXTURES / "llc_10k.csv", footprint=1 << 20
        )["digest"] == desc["digest"]
