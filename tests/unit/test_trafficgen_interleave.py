"""Unit tests for multi-tenant stream interleaving and attribution.

The determinism guarantees under test: per-tenant derived seeds (adding
a tenant never perturbs the others), disjoint line-aligned address
ranges (every NVM data line belongs to exactly one tenant), and a merge
order that is a pure function of ``(descriptor, length, seed)``.
"""

import pytest

from repro.obs import ObsSession
from repro.sim.runner import run_simulation
from repro.trafficgen.descriptor import interleave_descriptor
from repro.trafficgen.interleave import (
    attribute_events,
    build_interleaved,
    interleave_attribution,
    tenant_bases,
    tenant_ranges,
)

KB = 1 << 10


def tiny_profile(name, footprint=4 * KB, write_ratio=1.0):
    return {
        "name": name,
        "pattern": "stream",
        "footprint": footprint,
        "write_ratio": write_ratio,
        "mem_gap": 2,
    }


def two_tenants(policy="round_robin", weights=(1.0, 1.0), burst=8):
    return interleave_descriptor(
        [
            {"name": "alice", "profile": tiny_profile("a"), "weight": weights[0]},
            {"name": "bob", "profile": tiny_profile("b"), "weight": weights[1]},
        ],
        policy=policy,
        burst=burst,
    )


class TestDeterminism:
    @pytest.mark.parametrize("policy", ["round_robin", "weighted", "bursty"])
    def test_rebuild_is_identical(self, policy):
        desc = two_tenants(policy)
        trace_a, attr_a = build_interleaved(desc, 300, 7)
        trace_b, attr_b = build_interleaved(desc, 300, 7)
        assert trace_a.records == trace_b.records
        assert attr_a == attr_b

    def test_seed_changes_the_merge(self):
        desc = two_tenants("weighted", weights=(1.0, 1.0))
        a, _ = build_interleaved(desc, 300, 1)
        b, _ = build_interleaved(desc, 300, 2)
        assert a.records != b.records

    def test_adding_a_tenant_never_perturbs_earlier_streams(self):
        pair = two_tenants()
        triple = interleave_descriptor(
            [
                {"name": "alice", "profile": tiny_profile("a")},
                {"name": "bob", "profile": tiny_profile("b")},
                {"name": "carol", "profile": tiny_profile("c")},
            ]
        )
        trace2, _ = build_interleaved(pair, 300, 7)
        trace3, _ = build_interleaved(triple, 300, 7)
        alice2 = [r for r in trace2.records if r.addr < 4 * KB]
        alice3 = [r for r in trace3.records if r.addr < 4 * KB]
        # Tenant 0's private stream (derived seed, own base) is a prefix
        # relation: the same records in the same per-tenant order.
        shared = min(len(alice2), len(alice3))
        assert alice2[:shared] == alice3[:shared]


class TestAddressIsolation:
    def test_bases_are_cumulative_line_aligned_footprints(self):
        desc = two_tenants()
        assert tenant_bases(desc["tenants"]) == [0, 4 * KB]
        ranges = tenant_ranges(desc)
        assert ranges == {"alice": (0, 4 * KB), "bob": (4 * KB, 8 * KB)}

    def test_ranges_are_disjoint_and_cover_every_record(self):
        desc = two_tenants("bursty")
        trace, _ = build_interleaved(desc, 400, 3)
        ranges = tenant_ranges(desc)
        spans = sorted(ranges.values())
        for (_, high), (low, _) in zip(spans, spans[1:]):
            assert high <= low
        for record in trace.records:
            assert sum(
                1 for low, high in ranges.values() if low <= record.addr < high
            ) == 1

    def test_round_robin_slots_alternate_ranges(self):
        desc = two_tenants()
        trace, _ = build_interleaved(desc, 100, 5)
        for i, record in enumerate(trace.records):
            low, high = (0, 4 * KB) if i % 2 == 0 else (4 * KB, 8 * KB)
            assert low <= record.addr < high


class TestAttribution:
    def test_round_robin_shares_are_exact(self):
        attr = interleave_attribution(two_tenants(), 100, 1)
        assert attr["policy"] == "round_robin"
        for stats in attr["tenants"].values():
            assert stats["references"] == 50
            assert stats["share"] == 0.5

    @pytest.mark.parametrize("policy", ["round_robin", "weighted", "bursty"])
    def test_references_always_sum_to_length(self, policy):
        attr = interleave_attribution(two_tenants(policy), 333, 9)
        assert sum(
            s["references"] for s in attr["tenants"].values()
        ) == 333

    def test_weighted_skew_follows_the_weights(self):
        attr = interleave_attribution(
            two_tenants("weighted", weights=(1.0, 9.0)), 1000, 4
        )
        assert attr["tenants"]["bob"]["references"] > (
            attr["tenants"]["alice"]["references"] * 4
        )

    def test_write_counts_respect_write_ratio(self):
        desc = interleave_descriptor(
            [
                {"name": "w", "profile": tiny_profile("w", write_ratio=1.0)},
                {"name": "r", "profile": tiny_profile("r", write_ratio=0.0)},
            ]
        )
        attr = interleave_attribution(desc, 200, 1)
        assert attr["tenants"]["w"]["writes"] == 100
        assert attr["tenants"]["r"]["writes"] == 0

    def test_attribution_carries_ranges_and_weights(self):
        attr = interleave_attribution(two_tenants(weights=(2.0, 1.0)), 50, 1)
        assert attr["tenants"]["alice"]["weight"] == 2.0
        assert attr["tenants"]["alice"]["range"] == [0, 4 * KB]
        assert attr["tenants"]["alice"]["distinct_lines"] <= 64

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            build_interleaved(two_tenants(), 0, 1)


class TestObsAttribution:
    def test_nvm_writes_bucket_by_tenant_range(self):
        """End to end: merged trace → simulation → per-tenant NVM writes.

        The data region is identity-mapped, tenant ranges are disjoint,
        and every ``nvm.write`` instant carries its address — so each
        data write lands in exactly one tenant bucket and everything
        else (counters, tree nodes) is metadata.
        """
        desc = two_tenants()
        trace, attr = build_interleaved(desc, 400, 2)
        session = ObsSession(capacity=1 << 16)
        run_simulation("ccnvm", trace, data_capacity=1 << 15, obs=session)
        buckets = attribute_events(
            session.bus.events(), tenant_ranges(desc)
        )
        assert set(buckets["tenants"]) == {"alice", "bob"}
        # Both tenants write (write_ratio 1.0), and the scheme writes
        # metadata (counters/tree) outside every tenant range.
        assert buckets["tenants"]["alice"] > 0
        assert buckets["tenants"]["bob"] > 0
        assert buckets["metadata"] > 0
        total = sum(
            1
            for e in session.bus.events()
            if e.name == "nvm.write" and (e.args or {}).get("addr") is not None
        )
        assert (
            buckets["tenants"]["alice"]
            + buckets["tenants"]["bob"]
            + buckets["metadata"]
        ) == total

    def test_events_without_addr_are_skipped(self):
        class FakeEvent:
            name = "nvm.write"
            args = {}

        out = attribute_events([FakeEvent()], {"t": (0, 64)})
        assert out == {"tenants": {"t": 0}, "metadata": 0}
