"""Unit tests for the synthetic generators and SPEC profiles."""

import pytest

from repro.common.constants import CACHE_LINE_SIZE
from repro.workloads import synthetic
from repro.workloads.spec import SPEC_ORDER, SPEC_PROFILES, all_spec_traces, spec_trace


class TestGeneratorContracts:
    GENERATORS = [
        lambda **kw: synthetic.sequential_stream(**kw),
        lambda **kw: synthetic.strided(**kw),
        lambda **kw: synthetic.random_uniform(**kw),
        lambda **kw: synthetic.hotspot(**kw),
        lambda **kw: synthetic.pointer_chase(**kw),
    ]

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_length_and_bounds(self, gen):
        trace = gen(length=500, footprint=1 << 16, seed=3)
        assert len(trace) == 500
        for r in trace:
            assert 0 <= r.addr < 1 << 16
            assert r.addr % CACHE_LINE_SIZE == 0
            assert r.icount >= 0

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_deterministic_for_same_seed(self, gen):
        a = gen(length=200, footprint=1 << 16, seed=5)
        b = gen(length=200, footprint=1 << 16, seed=5)
        assert a.records == b.records

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_seed_changes_trace(self, gen):
        a = gen(length=200, footprint=1 << 16, write_ratio=0.5, seed=1)
        b = gen(length=200, footprint=1 << 16, write_ratio=0.5, seed=2)
        assert a.records != b.records

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_write_ratio_respected(self, gen):
        trace = gen(length=3000, footprint=1 << 16, write_ratio=0.4, seed=0)
        assert 0.3 < trace.write_fraction < 0.5

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_base_offsets_addresses(self, gen):
        trace = gen(length=100, footprint=1 << 14, base=1 << 20, seed=0)
        assert all(r.addr >= 1 << 20 for r in trace)

    @pytest.mark.parametrize("gen", GENERATORS)
    def test_rejects_bad_arguments(self, gen):
        with pytest.raises(ValueError):
            gen(length=0, footprint=1 << 16)
        with pytest.raises(ValueError):
            gen(length=10, footprint=16)


class TestPatternShapes:
    def test_stream_is_sequential(self):
        trace = synthetic.sequential_stream(length=10, footprint=1 << 16)
        addrs = [r.addr for r in trace]
        assert addrs == [i * 64 for i in range(10)]

    def test_stream_wraps(self):
        trace = synthetic.sequential_stream(length=5, footprint=3 * 64)
        assert [r.addr for r in trace] == [0, 64, 128, 0, 64]

    def test_strided_stride(self):
        trace = synthetic.strided(length=4, footprint=1 << 16, stride=256)
        assert [r.addr for r in trace] == [0, 256, 512, 768]

    def test_strided_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            synthetic.strided(length=4, footprint=1 << 16, stride=100)

    def test_hotspot_concentrates(self):
        trace = synthetic.hotspot(
            length=4000,
            footprint=1 << 18,
            hot_fraction=0.1,
            hot_probability=0.9,
            seed=0,
        )
        hot_limit = (1 << 18) // 10
        hot_hits = sum(1 for r in trace if r.addr < hot_limit)
        assert hot_hits / len(trace) > 0.8

    def test_hotspot_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            synthetic.hotspot(length=10, footprint=1 << 16, hot_fraction=0.0)

    def test_pointer_chase_covers_permutation(self):
        lines = 32
        trace = synthetic.pointer_chase(length=lines, footprint=lines * 64)
        assert len({r.addr for r in trace}) == lines

    def test_interleave_preserves_records(self):
        a = synthetic.sequential_stream(length=10, footprint=1 << 12, name="a")
        b = synthetic.random_uniform(length=5, footprint=1 << 12, name="b")
        merged = synthetic.interleave("m", a, b, seed=0)
        assert len(merged) == 15
        assert sorted(r.addr for r in merged) == sorted(
            [r.addr for r in a] + [r.addr for r in b]
        )

    def test_interleave_keeps_relative_order(self):
        a = synthetic.sequential_stream(length=6, footprint=1 << 12, name="a")
        merged = synthetic.interleave("m", a, seed=0)
        assert [r.addr for r in merged] == [r.addr for r in a]


class TestSpecProfiles:
    def test_all_eight_benchmarks_present(self):
        assert set(SPEC_ORDER) == set(SPEC_PROFILES)
        assert len(SPEC_ORDER) == 8

    @pytest.mark.parametrize("name", SPEC_ORDER)
    def test_profiles_generate(self, name):
        trace = spec_trace(name, 300, seed=2)
        assert len(trace) == 300
        assert trace.name == name
        profile = SPEC_PROFILES[name]
        assert all(r.addr < profile.footprint for r in trace)

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ValueError):
            spec_trace("dhrystone", 100)

    def test_write_intensity_ordering(self):
        # lbm is the most write-intensive, namd among the least.
        lbm = spec_trace("lbm", 4000).write_fraction
        namd = spec_trace("namd", 4000).write_fraction
        libquantum = spec_trace("libquantum", 4000).write_fraction
        assert lbm > namd
        assert lbm > libquantum

    def test_memory_intensity_ordering(self):
        # Streaming profiles touch far more lines than cache-resident ones.
        assert spec_trace("lbm", 4000).footprint() > spec_trace(
            "namd", 4000
        ).footprint()

    def test_all_spec_traces_shape(self):
        traces = all_spec_traces(100, seed=1)
        assert list(traces) == SPEC_ORDER
        assert all(len(t) == 100 for t in traces.values())

    def test_unknown_pattern_rejected(self):
        from repro.workloads.spec import SpecProfile

        bad = SpecProfile(
            name="bad", pattern="mystery", footprint=1 << 16,
            write_ratio=0.1, mem_gap=5,
        )
        with pytest.raises(ValueError):
            bad.generate(10)
