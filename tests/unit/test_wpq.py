"""Unit tests for the write pending queue and its ADR/atomic-batch semantics."""

import pytest

from repro.common.constants import CACHE_LINE_SIZE
from repro.mem.nvm import NVMDevice
from repro.mem.wpq import AtomicBatchError, WritePendingQueue
from repro.metadata.layout import MemoryLayout


LINE = bytes([0x5A]) * CACHE_LINE_SIZE


@pytest.fixture
def wpq():
    nvm = NVMDevice(MemoryLayout(1 << 20))
    return WritePendingQueue(nvm, entries=4)


class TestNormalWrites:
    def test_write_is_immediately_durable(self, wpq):
        wpq.write(0, LINE)
        assert wpq.nvm.peek(0) == LINE

    def test_partial_write_passthrough(self, wpq):
        wpq.write_partial(0, 16, b"\x11" * 16)
        assert wpq.nvm.peek(0)[16:32] == b"\x11" * 16

    def test_normal_writes_counted(self, wpq):
        wpq.write(0, LINE)
        wpq.write_partial(64, 0, b"\x01" * 16)
        assert wpq.stats.counter("normal_writes").value == 2


class TestAtomicBatch:
    def test_batch_held_until_commit(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(0, LINE)
        assert wpq.nvm.peek(0) == bytes(CACHE_LINE_SIZE)  # not yet visible
        flushed = wpq.commit_atomic()
        assert flushed == 1
        assert wpq.nvm.peek(0) == LINE

    def test_commit_flushes_in_order(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(0, LINE)
        wpq.write_atomic(0, bytes([0x77]) * CACHE_LINE_SIZE)
        wpq.commit_atomic()
        assert wpq.nvm.peek(0) == bytes([0x77]) * CACHE_LINE_SIZE

    def test_batch_size_tracking(self, wpq):
        assert not wpq.in_atomic_batch
        wpq.begin_atomic()
        assert wpq.in_atomic_batch
        wpq.write_atomic(0, LINE)
        wpq.write_atomic(64, LINE)
        assert wpq.batch_size == 2
        wpq.commit_atomic()
        assert not wpq.in_atomic_batch
        assert wpq.batch_size == 0

    def test_batch_capacity_enforced(self, wpq):
        wpq.begin_atomic()
        for i in range(4):
            wpq.write_atomic(i * 64, LINE)
        with pytest.raises(AtomicBatchError):
            wpq.write_atomic(256, LINE)

    def test_nested_batches_rejected(self, wpq):
        wpq.begin_atomic()
        with pytest.raises(AtomicBatchError):
            wpq.begin_atomic()

    def test_stray_signals_rejected(self, wpq):
        with pytest.raises(AtomicBatchError):
            wpq.write_atomic(0, LINE)
        with pytest.raises(AtomicBatchError):
            wpq.commit_atomic()

    def test_normal_writes_flow_during_batch(self, wpq):
        # "normal data blocks still flow in legacy mode" (Section 4.2).
        wpq.begin_atomic()
        wpq.write(128, LINE)
        assert wpq.nvm.peek(128) == LINE
        wpq.commit_atomic()


class TestPowerFailure:
    def test_crash_without_end_signal_drops_batch(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(0, LINE)
        wpq.write_atomic(64, LINE)
        dropped = wpq.power_failure()
        assert dropped == 2
        assert wpq.nvm.peek(0) == bytes(CACHE_LINE_SIZE)
        assert wpq.nvm.peek(64) == bytes(CACHE_LINE_SIZE)
        assert not wpq.in_atomic_batch

    def test_crash_after_commit_preserves_batch(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(0, LINE)
        wpq.commit_atomic()
        assert wpq.power_failure() == 0
        assert wpq.nvm.peek(0) == LINE

    def test_crash_outside_batch_is_noop(self, wpq):
        wpq.write(0, LINE)
        assert wpq.power_failure() == 0
        assert wpq.nvm.peek(0) == LINE

    def test_batch_usable_after_crash(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(0, LINE)
        wpq.power_failure()
        wpq.begin_atomic()  # must not raise
        wpq.write_atomic(64, LINE)
        wpq.commit_atomic()
        assert wpq.nvm.peek(64) == LINE

    def test_drop_statistics(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(0, LINE)
        wpq.power_failure()
        assert wpq.stats.counter("batches_dropped").value == 1
        assert wpq.stats.counter("batches_committed").value == 0


class TestBoundsValidation:
    """The WPQ rejects bad targets before any side effect (not only the
    device): statistics must not drift and atomic batches must not
    accept a line that would explode half-flushed at commit time."""

    def test_write_rejects_misaligned_addr(self, wpq):
        with pytest.raises(ValueError):
            wpq.write(7, LINE)
        assert wpq.stats.counter("normal_writes").value == 0

    def test_write_rejects_out_of_range_addr(self, wpq):
        top = wpq.nvm.layout.total_capacity
        with pytest.raises(ValueError):
            wpq.write(top, LINE)
        with pytest.raises(ValueError):
            wpq.write(-64, LINE)
        assert wpq.stats.counter("normal_writes").value == 0

    def test_write_rejects_short_line(self, wpq):
        with pytest.raises(ValueError):
            wpq.write(0, b"short")
        assert wpq.stats.counter("normal_writes").value == 0

    def test_partial_rejects_negative_offset(self, wpq):
        with pytest.raises(ValueError):
            wpq.write_partial(0, -1, b"\x01" * 4)
        assert wpq.stats.counter("normal_writes").value == 0

    def test_partial_rejects_overrun(self, wpq):
        with pytest.raises(ValueError):
            wpq.write_partial(0, CACHE_LINE_SIZE - 8, b"\x01" * 9)
        assert wpq.stats.counter("normal_writes").value == 0

    def test_partial_accepts_exact_tail(self, wpq):
        wpq.write_partial(0, CACHE_LINE_SIZE - 16, b"\x22" * 16)
        assert wpq.nvm.peek(0)[-16:] == b"\x22" * 16

    def test_partial_rejects_misaligned_line_addr(self, wpq):
        with pytest.raises(ValueError):
            wpq.write_partial(33, 0, b"\x01" * 4)

    def test_atomic_rejects_bad_addr_before_joining_batch(self, wpq):
        wpq.begin_atomic()
        with pytest.raises(ValueError):
            wpq.write_atomic(7, LINE)
        with pytest.raises(ValueError):
            wpq.write_atomic(wpq.nvm.layout.total_capacity, LINE)
        with pytest.raises(ValueError):
            wpq.write_atomic(0, b"short")
        assert wpq.batch_size == 0  # nothing half-joined the batch
        assert wpq.commit_atomic() == 0

    def test_failed_writes_leave_device_untouched(self, wpq):
        with pytest.raises(ValueError):
            wpq.write(7, LINE)
        assert wpq.nvm.peek(0) == bytes(CACHE_LINE_SIZE)


class TestBatchConflicts:
    """Normal traffic may flow during a batch, but not into a line the
    batch is blocking — the store would be ordered before the batch,
    breaking all-or-nothing."""

    def test_normal_write_into_blocked_line_rejected(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(64, LINE)
        with pytest.raises(AtomicBatchError):
            wpq.write(64, bytes([1]) * CACHE_LINE_SIZE)
        assert wpq.stats.counter("normal_writes").value == 0
        assert wpq.commit_atomic() == 1
        assert wpq.nvm.peek(64) == LINE

    def test_partial_write_into_blocked_line_rejected(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(64, LINE)
        with pytest.raises(AtomicBatchError):
            wpq.write_partial(64, 0, b"\x01" * 16)
        wpq.commit_atomic()

    def test_other_lines_still_flow(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(64, LINE)
        wpq.write(128, LINE)  # different line: fine
        assert wpq.nvm.peek(128) == LINE
        wpq.commit_atomic()

    def test_blocked_line_free_after_commit(self, wpq):
        wpq.begin_atomic()
        wpq.write_atomic(64, LINE)
        wpq.commit_atomic()
        wpq.write(64, bytes([3]) * CACHE_LINE_SIZE)
        assert wpq.nvm.peek(64) == bytes([3]) * CACHE_LINE_SIZE


class TestConstruction:
    def test_rejects_zero_entries(self):
        nvm = NVMDevice(MemoryLayout(1 << 20))
        with pytest.raises(ValueError):
            WritePendingQueue(nvm, entries=0)
