"""Edge cases at the persistence boundary: WPQ batch statistics, batch
reuse, and scheme crash() interactions with in-flight state."""

from repro.core.schemes import create_scheme
from repro.mem.nvm import NVMDevice
from repro.mem.wpq import WritePendingQueue
from repro.metadata.layout import MemoryLayout
from tests.conftest import SMALL_CAPACITY, payload, small_config


class TestBatchStatistics:
    def test_batch_size_distribution_samples_commits(self):
        nvm = NVMDevice(MemoryLayout(1 << 20))
        wpq = WritePendingQueue(nvm, entries=8)
        for size in (1, 3, 5):
            wpq.begin_atomic()
            for i in range(size):
                wpq.write_atomic(i * 64, bytes(64))
            wpq.commit_atomic()
        dist = wpq.stats.distribution("batch_size")
        assert dist.count == 3
        assert dist.mean == 3.0
        assert dist.max == 5

    def test_dropped_batches_not_sampled(self):
        nvm = NVMDevice(MemoryLayout(1 << 20))
        wpq = WritePendingQueue(nvm, entries=8)
        wpq.begin_atomic()
        wpq.write_atomic(0, bytes(64))
        wpq.power_failure()
        assert wpq.stats.distribution("batch_size").count == 0


class TestCrashDuringScheme:
    def test_crash_with_open_epoch_then_new_epoch(self, config):
        scheme = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=1)
        scheme.writeback(0, 0x1000, payload(1))
        assert len(scheme.queue) > 0
        scheme.crash()
        assert len(scheme.queue) == 0
        assert scheme.recover().success
        # The machine is immediately usable for a fresh epoch.
        scheme.writeback(10_000, 0x2000, payload(2))
        scheme.flush()
        assert scheme.queue.drains_by_trigger()["flush"] >= 1

    def test_repeated_crash_without_recovery_is_idempotent(self, config):
        scheme = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=2)
        scheme.writeback(0, 0x1000, payload(1))
        scheme.crash()
        image = scheme.nvm.snapshot()
        scheme.crash()
        scheme.crash()
        assert scheme.nvm.snapshot() == image
        assert scheme.recover().success

    def test_recovery_without_prior_crash_is_safe(self, config):
        """Recovery on a live, flushed machine is a no-op audit."""
        scheme = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=3)
        scheme.writeback(0, 0x1000, payload(1))
        scheme.flush()
        scheme.meta.crash()  # recovery expects cold caches
        report = scheme.recover()
        assert report.success
        assert report.total_retries == 0

    def test_flush_twice_is_idempotent(self, config):
        scheme = create_scheme("ccnvm", config, SMALL_CAPACITY, seed=4)
        scheme.writeback(0, 0x1000, payload(1))
        scheme.flush()
        writes = scheme.nvm.total_writes
        scheme.flush()  # empty epoch: no new metadata traffic
        assert scheme.nvm.total_writes == writes


class TestDrainTriggerPriority:
    def test_queue_full_fires_before_reservation(self, config):
        """Trigger 1's look-ahead: the drain happens before the incoming
        path is reserved, so the reservation always succeeds."""
        cfg = small_config(dirty_queue_entries=8)
        scheme = create_scheme("ccnvm", cfg, SMALL_CAPACITY, seed=5)
        t = 0
        for page in range(30):  # distinct pages overflow 8 entries fast
            scheme.writeback(t, page * 4096, payload(page))
            t += 500
        assert scheme.queue.drains_by_trigger()["queue_full"] >= 1
        # Never overflowed: every reservation fit post-drain.
        assert len(scheme.queue) <= 8

    def test_overflow_trigger_beats_update_limit(self, config):
        from repro.common.constants import MINOR_COUNTER_MAX

        cfg = small_config(update_limit=4)
        scheme = create_scheme("ccnvm", cfg, SMALL_CAPACITY, seed=6)
        scheme.meta.load_counter(0x1000)
        line = scheme.meta.probe(scheme.layout.counter_line_addr(0x1000))
        line.data.minors[scheme.layout.block_slot(0x1000)] = MINOR_COUNTER_MAX
        line.update_count = 100  # both triggers armed
        scheme.writeback(0, 0x1000, payload(1))
        triggers = scheme.queue.drains_by_trigger()
        assert triggers["overflow"] == 1
        assert triggers["update_limit"] == 0
